package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/egs-synthesis/egs"
)

const benchDir = "../../testdata/benchmarks/knowledge-discovery"

// discardLogger silences request logs in tests.
func discardLogger() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

// newTestServer starts a Server plus an httptest front end and
// registers cleanup for both.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = discardLogger()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return s, ts
}

func postTaskFile(t *testing.T, url, path string, query string) (*http.Response, *SynthesisResponse) {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return post(t, url+"/synthesize"+query, "text/plain", string(src))
}

func post(t *testing.T, url, contentType, body string) (*http.Response, *SynthesisResponse) {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SynthesisResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, &sr
}

func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestEndToEndSurfaceSyntax runs the paper's kinship and traffic
// benchmarks through the full HTTP path and checks the Datalog
// answers.
func TestEndToEndSurfaceSyntax(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp, sr := postTaskFile(t, ts.URL, filepath.Join(benchDir, "kinship.task"), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("kinship: status %d (%s)", resp.StatusCode, sr.Error)
	}
	if sr.Status != "sat" {
		t.Fatalf("kinship: status %q, want sat (%s)", sr.Status, sr.Error)
	}
	for _, rule := range []string{"child(y, x) :- mother(x, y).", "child(y, x) :- father(x, y)."} {
		if !strings.Contains(sr.Datalog, rule) {
			t.Errorf("kinship datalog missing %q:\n%s", rule, sr.Datalog)
		}
	}
	if !strings.Contains(sr.SQL, "SELECT DISTINCT") || !strings.Contains(sr.SQL, "UNION") {
		t.Errorf("kinship SQL rendering suspicious:\n%s", sr.SQL)
	}
	if sr.Cached {
		t.Error("first kinship request reported cached")
	}
	if len(sr.TaskHash) != 64 {
		t.Errorf("task_hash = %q, want 64 hex chars", sr.TaskHash)
	}
	if sr.Stats == nil || sr.Stats.RulesLearned != 2 {
		t.Errorf("kinship stats = %+v, want 2 rules learned", sr.Stats)
	}

	_, sr = postTaskFile(t, ts.URL, filepath.Join(benchDir, "traffic.task"), "")
	if sr.Status != "sat" {
		t.Fatalf("traffic: status %q, want sat (%s)", sr.Status, sr.Error)
	}
	wantTraffic := "Crashes(x) :- Intersects(x, y), GreenSignal(x), GreenSignal(y), HasTraffic(x), HasTraffic(y)."
	if strings.TrimSpace(sr.Datalog) != wantTraffic {
		t.Errorf("traffic datalog = %q, want %q", sr.Datalog, wantTraffic)
	}
}

// TestCacheHit verifies that a second identical task is served from
// the cache: the cached flag is set, no new synthesis runs, and the
// hit counter is visible in /metrics.
func TestCacheHit(t *testing.T) {
	var runs atomic.Int64
	cfg := Config{Workers: 1, synthesize: func(ctx context.Context, tk *egs.Task, o egs.Options) (egs.Result, error) {
		runs.Add(1)
		return egs.Synthesize(ctx, tk, o)
	}}
	_, ts := newTestServer(t, cfg)

	path := filepath.Join(benchDir, "kinship.task")
	_, first := postTaskFile(t, ts.URL, path, "")
	if first.Status != "sat" || first.Cached {
		t.Fatalf("first request: status=%q cached=%v", first.Status, first.Cached)
	}
	_, second := postTaskFile(t, ts.URL, path, "")
	if !second.Cached {
		t.Error("second identical request not served from cache")
	}
	if second.Datalog != first.Datalog {
		t.Errorf("cached datalog differs:\n%s\nvs\n%s", second.Datalog, first.Datalog)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("synthesis ran %d times, want 1", got)
	}

	m := scrapeMetrics(t, ts.URL)
	for _, want := range []string{"egs_cache_hits_total 1", "egs_cache_misses_total 1", "egs_cache_entries 1"} {
		if !strings.Contains(m, want) {
			t.Errorf("/metrics missing %q\n%s", want, m)
		}
	}
}

// TestCacheKeyIncludesOptions: the same task under different options
// must not share a cache entry.
func TestCacheKeyIncludesOptions(t *testing.T) {
	var runs atomic.Int64
	cfg := Config{Workers: 1, synthesize: func(ctx context.Context, tk *egs.Task, o egs.Options) (egs.Result, error) {
		runs.Add(1)
		return egs.Synthesize(ctx, tk, o)
	}}
	_, ts := newTestServer(t, cfg)
	body := kinshipJSON(t, nil)
	post(t, ts.URL+"/synthesize", "application/json", body)
	post(t, ts.URL+"/synthesize", "application/json", kinshipJSON(t, &RequestOptions{Priority: "p1"}))
	if got := runs.Load(); got != 2 {
		t.Errorf("synthesis ran %d times, want 2 (options must split the cache key)", got)
	}
}

// kinshipJSON builds the kinship task as a JSON request body.
func kinshipJSON(t *testing.T, opts *RequestOptions) string {
	t.Helper()
	req := SynthesisRequest{
		Name:        "kinship-json",
		Inputs:      []RelDecl{{Name: "mother", Arity: 2}, {Name: "father", Arity: 2}},
		Outputs:     []RelDecl{{Name: "child", Arity: 2}},
		ClosedWorld: true,
		Facts: []Atom{
			{Rel: "mother", Args: []string{"Sarabi", "Simba"}},
			{Rel: "mother", Args: []string{"Nala", "Kiara"}},
			{Rel: "father", Args: []string{"Mufasa", "Simba"}},
			{Rel: "father", Args: []string{"Simba", "Kiara"}},
		},
		Positive: []Atom{
			{Rel: "child", Args: []string{"Simba", "Sarabi"}},
			{Rel: "child", Args: []string{"Simba", "Mufasa"}},
			{Rel: "child", Args: []string{"Kiara", "Nala"}},
			{Rel: "child", Args: []string{"Kiara", "Simba"}},
		},
		Options: opts,
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestSynthesizeJSONBody(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, sr := post(t, ts.URL+"/synthesize", "application/json", kinshipJSON(t, nil))
	if resp.StatusCode != http.StatusOK || sr.Status != "sat" {
		t.Fatalf("status %d / %q (%s)", resp.StatusCode, sr.Status, sr.Error)
	}
	// The JSON task is a subset of the kinship benchmark, so the
	// learned program may differ from the full task's; it must still
	// be a child-rule over the declared inputs.
	if !strings.Contains(sr.Datalog, "child(") || !strings.Contains(sr.Datalog, "mother(") {
		t.Errorf("datalog does not look like a kinship program:\n%s", sr.Datalog)
	}
}

// TestJSONAndSurfaceSyntaxShareCache: the same semantic task arriving
// in either syntax must map to one canonical hash.
func TestJSONAndSurfaceSyntaxShareCache(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	surface := `
closed-world true
input mother(2)
input father(2)
output child(2)
mother(Sarabi, Simba).
mother(Nala, Kiara).
father(Mufasa, Simba).
father(Simba, Kiara).
+child(Simba, Sarabi).
+child(Simba, Mufasa).
+child(Kiara, Nala).
+child(Kiara, Simba).
`
	_, a := post(t, ts.URL+"/synthesize", "text/plain", surface)
	_, b := post(t, ts.URL+"/synthesize", "application/json", kinshipJSON(t, nil))
	if a.TaskHash != b.TaskHash {
		t.Errorf("surface and JSON forms of the same task hash differently:\n%s\n%s", a.TaskHash, b.TaskHash)
	}
	if !b.Cached {
		t.Error("JSON form was not served from the cache primed by the surface form")
	}
}

// TestQueueFullReturns429 drives the server into a queue-full state
// with a gated synthesis function and checks admission control.
func TestQueueFullReturns429(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	cfg := Config{
		Workers:    1,
		QueueDepth: 1,
		CacheSize:  -1, // disable: identical tasks must not hit the cache
		synthesize: func(ctx context.Context, tk *egs.Task, o egs.Options) (egs.Result, error) {
			started <- struct{}{}
			select {
			case <-gate:
			case <-ctx.Done():
				return egs.Result{}, ctx.Err()
			}
			return egs.Synthesize(ctx, tk, o)
		},
	}
	s, ts := newTestServer(t, cfg)

	src, err := os.ReadFile(filepath.Join(benchDir, "kinship.task"))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	// Each request carries a distinct extra fact: identical tasks would
	// coalesce in the singleflight tier and never contend for the queue.
	issue := func(variant string) {
		defer wg.Done()
		body := string(src) + "\nfather(" + variant + "A, " + variant + "B).\n"
		resp, err := http.Post(ts.URL+"/synthesize", "text/plain", strings.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	// First request occupies the only worker...
	wg.Add(1)
	go issue("Va")
	<-started
	// ...second fills the queue (poll the depth gauge: enqueue happens
	// just before the handler blocks on the result)...
	wg.Add(1)
	go issue("Vb")
	deadline := time.Now().Add(5 * time.Second)
	for s.mQueueDepth.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}
	// ...third must be rejected, not blocked.
	resp, sr := postTaskFile(t, ts.URL, filepath.Join(benchDir, "kinship.task"), "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("429 Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	if sr.Status != "error" {
		t.Errorf("rejected response status %q, want error", sr.Status)
	}
	close(gate)
	wg.Wait()

	if !strings.Contains(scrapeMetrics(t, ts.URL), "egs_queue_rejections_total 1") {
		t.Error("queue rejection not counted in /metrics")
	}
}

// TestRequestDeadline verifies that a per-request timeout surfaces as
// 504 and that the deadline propagates into the engine's context.
func TestRequestDeadline(t *testing.T) {
	cfg := Config{Workers: 1, synthesize: func(ctx context.Context, tk *egs.Task, o egs.Options) (egs.Result, error) {
		<-ctx.Done() // simulate a pathological task: only the deadline stops it
		return egs.Result{}, ctx.Err()
	}}
	_, ts := newTestServer(t, cfg)
	resp, sr := postTaskFile(t, ts.URL, filepath.Join(benchDir, "kinship.task"), "?timeout_ms=50")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 504 (%s)", resp.StatusCode, sr.Error)
	}
}

// TestBudgetExceeded verifies the distinct status for MaxContexts
// exhaustion.
func TestBudgetExceeded(t *testing.T) {
	cfg := Config{Workers: 1, synthesize: func(ctx context.Context, tk *egs.Task, o egs.Options) (egs.Result, error) {
		return egs.Result{}, egs.ErrBudgetExceeded
	}}
	_, ts := newTestServer(t, cfg)
	resp, _ := postTaskFile(t, ts.URL, filepath.Join(benchDir, "kinship.task"), "")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("status %d, want 422", resp.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name, contentType, body string
	}{
		{"malformed JSON", "application/json", "{"},
		{"unknown JSON field", "application/json", `{"bogus": 1}`},
		{"undeclared relation", "text/plain", "input p(1)\noutput q(1)\np(a).\n+r(a).\n"},
		{"duplicate example", "text/plain", "input p(1)\noutput q(1)\np(a).\n+q(a).\n+q(a).\n"},
		{"bad priority", "application/json", `{"inputs":[{"name":"p","arity":1}],"outputs":[{"name":"q","arity":1}],"facts":[{"rel":"p","args":["a"]}],"positive":[{"rel":"q","args":["a"]}],"options":{"priority":"p9"}}`},
		{"empty body", "text/plain", ""},
		{"no labelled tuples", "text/plain", "input p(1)\noutput q(1)\np(a).\n"},
	}
	for _, c := range cases {
		resp, sr := post(t, ts.URL+"/synthesize", c.contentType, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
		if sr.Status != "error" || sr.Error == "" {
			t.Errorf("%s: response %+v lacks an error message", c.name, sr)
		}
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/synthesize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /synthesize: status %d, want 405", resp.StatusCode)
	}
}

// TestConcurrentClients exercises the pool and cache under the race
// detector with the real engine.
func TestConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 256})
	tasks := make(map[string]string)
	for _, name := range []string{"kinship.task", "traffic.task"} {
		src, err := os.ReadFile(filepath.Join(benchDir, name))
		if err != nil {
			t.Fatal(err)
		}
		tasks[name] = string(src)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				name := "kinship.task"
				if (g+i)%2 == 0 {
					name = "traffic.task"
				}
				resp, err := http.Post(ts.URL+"/synthesize", "text/plain", strings.NewReader(tasks[name]))
				if err != nil {
					errs <- err
					continue
				}
				var sr SynthesisResponse
				err = json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					continue
				}
				if resp.StatusCode != http.StatusOK || sr.Status != "sat" {
					errs <- fmt.Errorf("%s: status %d/%q (%s)", name, resp.StatusCode, sr.Status, sr.Error)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestHealthzAndDrain: healthz flips to 503 after Shutdown and new
// syntheses are refused while draining.
func TestHealthzAndDrain(t *testing.T) {
	s := New(Config{Workers: 1, Logger: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d, want 200", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	r2, sr := postTaskFile(t, ts.URL, filepath.Join(benchDir, "kinship.task"), "")
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("synthesize while draining: %d, want 503 (%s)", r2.StatusCode, sr.Error)
	}
}

// TestMetricsFamiliesPresent asserts the metric surface the runbooks
// depend on.
func TestMetricsFamiliesPresent(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	postTaskFile(t, ts.URL, filepath.Join(benchDir, "kinship.task"), "")
	m := scrapeMetrics(t, ts.URL)
	for _, fam := range []string{
		"egs_requests_total", "egs_syntheses_total", "egs_queue_depth",
		"egs_inflight_syntheses", "egs_queue_rejections_total",
		"egs_cache_hits_total", "egs_cache_misses_total", "egs_cache_entries",
		"egs_synthesis_seconds_bucket", "egs_synthesis_seconds_count",
	} {
		if !strings.Contains(m, fam) {
			t.Errorf("/metrics missing family %s", fam)
		}
	}
	if !strings.Contains(m, `egs_syntheses_total{outcome="sat"} 1`) {
		t.Errorf("/metrics missing sat outcome:\n%s", m)
	}
}
