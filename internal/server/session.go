// Incremental-session surface of the synthesis service: a bounded,
// TTL-evicted store of egs.Session instances plus the handlers for
//
//	POST   /sessions             create a session, solve revision 0
//	POST   /sessions/{id}/delta  apply deltas, optionally re-solve
//	GET    /sessions/{id}        session status (never solves)
//	DELETE /sessions/{id}        drop the session
//
// Session solves run through the same admission queue and worker pool
// as one-shot requests — a full queue answers 429 — but never touch
// the canonical-hash result cache: a session's task mutates under its
// canonical hash, so serving (or seeding) cached entries from session
// state could replay a stale answer. Freshness comes from the
// session's own warm memo instead, visible as candidates_cached in
// the response stats and as egs_session_memo_reuse_ratio in /metrics.

package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/egs-synthesis/egs"
)

// serverSession is one live incremental session plus its bookkeeping.
type serverSession struct {
	id      string
	name    string
	sess    *egs.Session
	created time.Time
	// lastUsed is guarded by the owning store's mutex; every handler
	// touch refreshes it.
	lastUsed time.Time
}

// sessionStore is a capacity-bounded map of live sessions with lazy
// TTL expiry (the janitor sweeps the rest).
type sessionStore struct {
	mu  sync.Mutex
	cap int
	ttl time.Duration
	m   map[string]*serverSession
}

func newSessionStore(capacity int, ttl time.Duration) *sessionStore {
	return &sessionStore{cap: capacity, ttl: ttl, m: make(map[string]*serverSession)}
}

var errSessionStoreFull = admissionError("session store is at capacity")

// add inserts a new session, enforcing the capacity bound.
func (st *sessionStore) add(ss *serverSession, now time.Time) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.m) >= st.cap {
		return errSessionStoreFull
	}
	ss.created, ss.lastUsed = now, now
	st.m[ss.id] = ss
	return nil
}

// get returns the live session with the given id, refreshing its TTL
// clock. A session found expired is removed and reported in the
// second result so the caller can count the eviction.
func (st *sessionStore) get(id string, now time.Time) (ss *serverSession, expired bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.m[id]
	if !ok {
		return nil, false
	}
	if now.Sub(s.lastUsed) > st.ttl {
		delete(st.m, id)
		return nil, true
	}
	s.lastUsed = now
	return s, false
}

// remove deletes the session, reporting whether it was present.
func (st *sessionStore) remove(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.m[id]
	delete(st.m, id)
	return ok
}

// sweep removes every session idle past the TTL and returns the count.
func (st *sessionStore) sweep(now time.Time) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for id, s := range st.m {
		if now.Sub(s.lastUsed) > st.ttl {
			delete(st.m, id)
			n++
		}
	}
	return n
}

// len reports the number of live sessions.
func (st *sessionStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}

// oldestIdle returns how long the least-recently-used session has
// been idle; zero when the store is empty.
func (st *sessionStore) oldestIdle(now time.Time) time.Duration {
	st.mu.Lock()
	defer st.mu.Unlock()
	var idle time.Duration
	for _, s := range st.m {
		if d := now.Sub(s.lastUsed); d > idle {
			idle = d
		}
	}
	return idle
}

// sessionJanitor periodically evicts TTL-expired sessions so idle
// sessions release memory without waiting to be touched.
func (s *Server) sessionJanitor() {
	defer s.wg.Done()
	period := s.cfg.SessionTTL / 4
	if period < time.Second {
		period = time.Second
	}
	if period > time.Minute {
		period = time.Minute
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case now := <-t.C:
			if n := s.sessions.sweep(now); n > 0 {
				s.mSessionEvictions.With("ttl").Add(uint64(n))
				s.mSessionsActive.Set(int64(s.sessions.len()))
				s.log.Info("sessions expired", "count", n)
			}
		}
	}
}

// newSessionID returns a 128-bit random hex id.
func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// DeltaOp is one session mutation.
type DeltaOp struct {
	// Op is "add_fact", "add_example", "remove_example", or "relabel".
	Op  string `json:"op"`
	Rel string `json:"rel"`
	// Args are the tuple's constants, by name.
	Args []string `json:"args"`
	// Positive selects the label polarity for add_example and relabel.
	Positive bool `json:"positive,omitempty"`
}

// DeltaRequest is the JSON body of POST /sessions/{id}/delta.
type DeltaRequest struct {
	Deltas []DeltaOp `json:"deltas"`
	// Solve controls whether the revision is synthesized after the
	// deltas apply (default true). With false the deltas are staged
	// and the response reports status "pending"; a later delta call
	// (possibly with an empty delta list) solves the accumulated
	// revision.
	Solve     *bool           `json:"solve,omitempty"`
	Options   *RequestOptions `json:"options,omitempty"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"`
}

// SessionResponse is the JSON body of the session endpoints: the
// synthesis result (when a solve ran) plus session bookkeeping.
type SessionResponse struct {
	SynthesisResponse
	SessionID string `json:"session_id"`
	// Revision counts solved revisions; 0 is the creation solve.
	Revision int `json:"revision"`
	// DeltasApplied is the session's lifetime delta count.
	DeltasApplied int `json:"deltas_applied"`
	// Pending reports deltas staged but not yet solved.
	Pending bool `json:"pending"`
}

// SessionStatus is the JSON body of GET /sessions/{id}.
type SessionStatus struct {
	SessionID     string  `json:"session_id"`
	Name          string  `json:"name,omitempty"`
	Revision      int     `json:"revision"`
	DeltasApplied int     `json:"deltas_applied"`
	Pending       bool    `json:"pending"`
	Facts         int     `json:"facts"`
	PosExamples   int     `json:"pos_examples"`
	NegExamples   int     `json:"neg_examples"`
	AgeSeconds    float64 `json:"age_seconds"`
}

// handleSessionCreate parses a task exactly like POST /synthesize,
// wraps it in a session, and solves revision 0 through the worker
// pool. The response carries the session id for subsequent deltas.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

	t, reqOpts, timeoutMS, err := parseRequest(r.Header.Get("Content-Type"), r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if pos, neg := t.NumExamples(); pos+neg == 0 {
		s.writeError(w, http.StatusBadRequest, "task declares no labelled output tuples; nothing to synthesize")
		return
	}
	opts, err := s.resolveOptions(reqOpts)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sess, err := egs.NewSession(t)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "session: "+err.Error())
		return
	}
	id, err := newSessionID()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "session id generation failed")
		return
	}
	ss := &serverSession{id: id, name: t.Name(), sess: sess}
	if err := s.sessions.add(ss, start); err != nil {
		s.mSessionRejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.sessionRetryAfterSeconds(start)))
		s.writeError(w, http.StatusTooManyRequests, err.Error())
		return
	}
	s.mSessionsActive.Set(int64(s.sessions.len()))

	resp, status, errMsg := s.solveSession(r.Context(), ss, opts, timeoutMS, start)
	if errMsg != "" {
		// The creation solve failed (timeout, budget, queue overflow):
		// drop the half-born session rather than leaking it.
		if s.sessions.remove(id) {
			s.mSessionEvictions.With("delete").Inc()
			s.mSessionsActive.Set(int64(s.sessions.len()))
		}
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		}
		s.writeError(w, status, errMsg)
		return
	}
	s.log.Info("session created", "session", id, "task", t.Name(), "status", resp.Status)
	s.writeJSON(w, http.StatusOK, resp)
}

// handleSessionDelta applies a delta batch and, unless solve=false,
// synthesizes the new revision warm.
func (s *Server) handleSessionDelta(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	ss, expired := s.sessions.get(r.PathValue("id"), start)
	if ss == nil {
		s.sessionMiss(w, expired)
		return
	}
	var req DeltaRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid JSON request: "+err.Error())
		return
	}
	for i, d := range req.Deltas {
		var err error
		switch d.Op {
		case "add_fact":
			err = ss.sess.AddFact(d.Rel, d.Args...)
		case "add_example":
			err = ss.sess.AddExample(d.Positive, d.Rel, d.Args...)
		case "remove_example":
			err = ss.sess.RemoveExample(d.Rel, d.Args...)
		case "relabel":
			err = ss.sess.RelabelTuple(d.Positive, d.Rel, d.Args...)
		default:
			err = fmt.Errorf("unknown op %q (want add_fact, add_example, remove_example, or relabel)", d.Op)
		}
		if err != nil {
			// Earlier deltas of the batch stay applied; the error names
			// the failing index so the client can resubmit the rest.
			s.writeError(w, http.StatusBadRequest, fmt.Sprintf("delta %d: %s", i, err))
			return
		}
		s.mSessionDeltas.Inc()
	}

	if req.Solve != nil && !*req.Solve {
		resp := &SessionResponse{SessionID: ss.id}
		resp.Status = "pending"
		s.fillSessionState(resp, ss)
		resp.ElapsedMS = msSince(start)
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	opts, err := s.resolveOptions(req.Options)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp, status, errMsg := s.solveSession(r.Context(), ss, opts, req.TimeoutMS, start)
	if errMsg != "" {
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		}
		s.writeError(w, status, errMsg)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	ss, expired := s.sessions.get(r.PathValue("id"), now)
	if ss == nil {
		s.sessionMiss(w, expired)
		return
	}
	pos, neg := ss.sess.NumExamples()
	s.writeJSON(w, http.StatusOK, &SessionStatus{
		SessionID:     ss.id,
		Name:          ss.name,
		Revision:      ss.sess.Revision(),
		DeltasApplied: ss.sess.Deltas(),
		Pending:       ss.sess.Pending(),
		Facts:         ss.sess.NumFacts(),
		PosExamples:   pos,
		NegExamples:   neg,
		AgeSeconds:    now.Sub(ss.created).Seconds(),
	})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.remove(r.PathValue("id")) {
		s.writeError(w, http.StatusNotFound, "no such session")
		return
	}
	s.mSessionEvictions.With("delete").Inc()
	s.mSessionsActive.Set(int64(s.sessions.len()))
	w.WriteHeader(http.StatusNoContent)
}

// sessionMiss answers a lookup that found no live session, counting
// the eviction when the miss was a lazy TTL expiry.
func (s *Server) sessionMiss(w http.ResponseWriter, expired bool) {
	if expired {
		s.mSessionEvictions.With("ttl").Inc()
		s.mSessionsActive.Set(int64(s.sessions.len()))
		s.writeError(w, http.StatusNotFound, "session expired")
		return
	}
	s.writeError(w, http.StatusNotFound, "no such session")
}

// solveSession runs one session revision through the admission queue
// and worker pool, bypassing the result cache entirely (see the
// package comment above). On success it returns the wire response; on
// failure, an HTTP status and message.
func (s *Server) solveSession(rctx context.Context, ss *serverSession, opts egs.Options, timeoutMS int64, start time.Time) (*SessionResponse, int, string) {
	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = min(time.Duration(timeoutMS)*time.Millisecond, s.cfg.MaxTimeout)
	}
	ctx, cancel := context.WithTimeout(rctx, timeout)
	defer cancel()
	j := &job{
		ctx:  ctx,
		do:   func(ctx context.Context) (egs.Result, error) { return ss.sess.Solve(ctx, opts) },
		done: make(chan jobResult, 1),
	}
	if err := s.enqueue(j); err != nil {
		if errors.Is(err, errQueueFull) {
			return nil, http.StatusTooManyRequests, err.Error()
		}
		return nil, http.StatusServiceUnavailable, err.Error()
	}
	var jr jobResult
	select {
	case jr = <-j.done:
	case <-ctx.Done():
		return nil, http.StatusGatewayTimeout, "synthesis did not finish within the request deadline"
	}
	if jr.err != nil {
		switch {
		case errors.Is(jr.err, egs.ErrBudgetExceeded):
			return nil, http.StatusUnprocessableEntity,
				"enumeration budget exceeded before the search completed (raise max_contexts or the server budget)"
		case errors.Is(jr.err, context.DeadlineExceeded), errors.Is(jr.err, context.Canceled):
			return nil, http.StatusGatewayTimeout, "synthesis did not finish within the request deadline"
		default:
			s.log.Error("session solve failed", "session", ss.id, "err", jr.err)
			return nil, http.StatusInternalServerError, "synthesis failed: " + jr.err.Error()
		}
	}
	// Fold this solve into the cumulative session memo-reuse ratio.
	evals := s.sessEvals.Add(uint64(jr.res.Stats.CandidatesEvaluated))
	hits := s.sessHits.Add(uint64(jr.res.Stats.CandidatesCached))
	if evals+hits > 0 {
		s.mSessionMemoRatio.Set(float64(hits) / float64(evals+hits))
	}

	resp := &SessionResponse{SynthesisResponse: *buildResponse(nil, jr.res, "")}
	resp.SessionID = ss.id
	s.fillSessionState(resp, ss)
	resp.ElapsedMS = msSince(start)
	s.log.Info("session revision solved",
		"session", ss.id, "task", ss.name, "revision", resp.Revision,
		"status", resp.Status, "synth_ms", float64(jr.dur.Microseconds())/1000,
		"evals", jr.res.Stats.CandidatesEvaluated, "memo_hits", jr.res.Stats.CandidatesCached)
	return resp, 0, ""
}

func (s *Server) fillSessionState(resp *SessionResponse, ss *serverSession) {
	resp.Revision = ss.sess.Revision()
	resp.DeltasApplied = ss.sess.Deltas()
	resp.Pending = ss.sess.Pending()
}

// sessionRetryAfterSeconds estimates when a session slot will free
// up: the time until the least-recently-used session ages out, with a
// one-second floor.
func (s *Server) sessionRetryAfterSeconds(now time.Time) int {
	wait := s.cfg.SessionTTL - s.sessions.oldestIdle(now)
	sec := int((wait + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}
