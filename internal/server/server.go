// Package server turns the EGS engine into a long-running synthesis
// service: an HTTP/JSON front end over egs.Synthesize with admission
// control, a canonical-hash result cache, and Prometheus-style
// observability. The request path is
//
//	handler → admission (bounded queue, 429 on overflow)
//	        → worker pool (cfg.Workers goroutines)
//	        → result cache (LRU over task.CanonicalHash + options)
//	        → egs.Synthesize (per-request context deadline)
//
// Cache hits bypass the queue entirely, so repeated tasks cost one
// hash computation. Per-request deadlines propagate through context
// into the engine, which also honours Options.MaxContexts budgets;
// both kinds of exhaustion surface as distinct HTTP statuses.
package server

import (
	"context"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/egs-synthesis/egs"
	"github.com/egs-synthesis/egs/internal/server/metrics"
)

// Config parameterizes a Server. The zero value serves with sensible
// defaults (see New).
type Config struct {
	// Workers is the number of concurrent syntheses (default
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue; a full queue answers 429
	// (default 64).
	QueueDepth int
	// CacheSize is the result-cache capacity in entries; 0 keeps the
	// default (256) and a negative value disables caching.
	CacheSize int
	// SnapshotCacheSize bounds the copy-on-write snapshot cache of
	// prepared tasks keyed by base (extensional) hash; requests whose
	// base matches a cached task adopt its interned database instead
	// of re-interning the facts. 0 keeps the default (64) and a
	// negative value disables snapshot sharing.
	SnapshotCacheSize int
	// SolveDelay adds a fixed hold to every worker execution before
	// the engine runs. It exists for capacity testing: the benchmark
	// suite's tasks solve in microseconds, so a realistic per-request
	// service time (against which routing and admission behaviour can
	// be measured) has to be injected. Zero — the default, and the
	// only sensible production setting — disables it.
	SolveDelay time.Duration
	// DefaultTimeout bounds synthesis time for requests that do not
	// set timeout_ms (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request timeout_ms (default 5m).
	MaxTimeout time.Duration
	// MaxContexts is the server-wide enumeration budget per request;
	// requests may lower but not raise it. 0 means unlimited.
	MaxContexts int
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// SessionCap bounds concurrently live incremental sessions; a full
	// store answers POST /sessions with 429 (default 64).
	SessionCap int
	// SessionTTL evicts sessions idle for longer than this (default
	// 15m). Every touch — delta, solve, status read — resets the clock.
	SessionTTL time.Duration
	// Logger receives structured request and lifecycle logs (default
	// slog.Default).
	Logger *slog.Logger

	// synthesize substitutes the engine in tests; nil selects
	// egs.Synthesize.
	synthesize synthFunc
}

type synthFunc func(ctx context.Context, t *egs.Task, opts egs.Options) (egs.Result, error)

// Server is a synthesis service instance. Create one with New, mount
// Handler on an http.Server, and drain with Shutdown.
type Server struct {
	cfg   Config
	log   *slog.Logger
	synth synthFunc
	cache *lruCache

	// flights coalesces concurrent cache misses on one key into a
	// single synthesis (see singleflight.go); snapshots shares
	// interned databases across requests with equal base hashes (see
	// snapshot.go).
	flights   *flightGroup
	snapshots *lruCache

	queue chan *job
	wg    sync.WaitGroup

	mu     sync.RWMutex // guards closed against concurrent enqueues
	closed bool

	// drain tracks recent queue-drain timestamps so 429 responses can
	// derive Retry-After from the observed service rate instead of a
	// hard-coded constant.
	drainMu    sync.Mutex
	drainTimes [drainWindow]time.Time
	drainCount int

	// traces retains recent request traces for GET /debug/traces/{id}.
	traces *traceStore

	// sessions holds live incremental sessions; janitorStop ends the
	// TTL sweeper.
	sessions    *sessionStore
	janitorStop chan struct{}
	// sessEvals/sessHits accumulate assessment work across all session
	// solves; their ratio is exported as egs_session_memo_reuse_ratio.
	sessEvals, sessHits atomic.Uint64

	reg *metrics.Registry

	mRequests    *metrics.CounterVec // HTTP responses by status code
	mSyntheses   *metrics.CounterVec // engine runs by outcome
	mQueueDepth  *metrics.Gauge
	mInFlight    *metrics.Gauge
	mRejected    *metrics.Counter
	mCacheHits   *metrics.Counter
	mCacheMisses *metrics.Counter
	mCacheSize   *metrics.Gauge
	mLatency     *metrics.Histogram
	// Request-latency attribution: time spent waiting for a worker vs
	// time spent solving (including any configured SolveDelay), so a
	// p99 regression can be blamed on admission or on synthesis.
	mQueueWait *metrics.Histogram
	mSolve     *metrics.Histogram
	// Singleflight accounting: leaders ran a synthesis, shared were
	// answered by someone else's in-flight run.
	mFlightLeaders *metrics.Counter
	mFlightShared  *metrics.Counter
	// Snapshot-cache accounting: hits adopted a shared interned
	// database, misses seeded one, fallbacks matched a base but could
	// not adopt (example constants outside the shared domain).
	mSnapshotHits      *metrics.Counter
	mSnapshotMisses    *metrics.Counter
	mSnapshotFallbacks *metrics.Counter
	// Assessment-cache counters: the engine's canonical-rule memo.
	// hit rate = memo_hits / (memo_hits + evals).
	mAssessEvals    *metrics.Counter
	mAssessMemoHits *metrics.Counter
	// Session metrics: live count, applied deltas, store-full
	// rejections, evictions by reason (ttl, delete), and the cumulative
	// memo-reuse ratio of session solves.
	mSessionsActive   *metrics.Gauge
	mSessionDeltas    *metrics.Counter
	mSessionRejected  *metrics.Counter
	mSessionEvictions *metrics.CounterVec
	mSessionMemoRatio *metrics.FloatGauge
}

// job is one admitted synthesis request.
type job struct {
	ctx  context.Context
	task *egs.Task
	opts egs.Options
	// do overrides the engine call (session solves run through their
	// Session instead of egs.Synthesize); nil selects s.synth on
	// (task, opts).
	do func(ctx context.Context) (egs.Result, error)
	// done receives the outcome exactly once; buffered so a worker
	// never blocks on a handler that gave up at its deadline.
	done chan jobResult
	// enqueuedAt stamps admission, for the queue-wait histogram.
	enqueuedAt time.Time
}

type jobResult struct {
	res egs.Result
	dur time.Duration
	err error
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	switch {
	case cfg.CacheSize == 0:
		cfg.CacheSize = 256
	case cfg.CacheSize < 0:
		cfg.CacheSize = 0
	}
	switch {
	case cfg.SnapshotCacheSize == 0:
		cfg.SnapshotCacheSize = 64
	case cfg.SnapshotCacheSize < 0:
		cfg.SnapshotCacheSize = 0
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 5 * time.Minute
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.SessionCap <= 0 {
		cfg.SessionCap = 64
	}
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = 15 * time.Minute
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.synthesize == nil {
		cfg.synthesize = egs.Synthesize
	}

	reg := metrics.New()
	s := &Server{
		cfg:         cfg,
		log:         cfg.Logger,
		synth:       cfg.synthesize,
		cache:       newLRU(cfg.CacheSize),
		flights:     newFlightGroup(),
		snapshots:   newLRU(cfg.SnapshotCacheSize),
		queue:       make(chan *job, cfg.QueueDepth),
		traces:      newTraceStore(traceStoreCap),
		sessions:    newSessionStore(cfg.SessionCap, cfg.SessionTTL),
		janitorStop: make(chan struct{}),
		reg:         reg,

		mRequests: reg.CounterVec("egs_requests_total",
			"HTTP responses served, by status code.", "code"),
		mSyntheses: reg.CounterVec("egs_syntheses_total",
			"Synthesis engine runs, by outcome (sat, unsat, error).", "outcome"),
		mQueueDepth: reg.Gauge("egs_queue_depth",
			"Admitted jobs waiting for a worker."),
		mInFlight: reg.Gauge("egs_inflight_syntheses",
			"Syntheses currently executing."),
		mRejected: reg.Counter("egs_queue_rejections_total",
			"Requests rejected with 429 because the queue was full."),
		mCacheHits: reg.Counter("egs_cache_hits_total",
			"Requests answered from the result cache."),
		mCacheMisses: reg.Counter("egs_cache_misses_total",
			"Requests that required a synthesis run."),
		mCacheSize: reg.Gauge("egs_cache_entries",
			"Entries resident in the result cache."),
		mLatency: reg.Histogram("egs_synthesis_seconds",
			"End-to-end admitted-request latency: queue wait plus solve (cache hits excluded).", nil),
		mQueueWait: reg.Histogram("egs_queue_wait_seconds",
			"Time admitted jobs spent queued before a worker picked them up.", nil),
		mSolve: reg.Histogram("egs_solve_seconds",
			"Worker execution time per job: the engine run plus any configured solve delay.", nil),
		mFlightLeaders: reg.Counter("egs_singleflight_leaders_total",
			"Cache misses that ran a synthesis as a singleflight leader."),
		mFlightShared: reg.Counter("egs_singleflight_shared_total",
			"Cache misses answered by another request's in-flight synthesis."),
		mSnapshotHits: reg.Counter("egs_snapshot_hits_total",
			"Requests that adopted a shared interned-database snapshot."),
		mSnapshotMisses: reg.Counter("egs_snapshot_misses_total",
			"Requests whose base was new; their task seeded the snapshot cache."),
		mSnapshotFallbacks: reg.Counter("egs_snapshot_fallbacks_total",
			"Requests matching a cached base that could not adopt it (examples outside the shared domain)."),
		mAssessEvals: reg.Counter("egs_assess_evals_total",
			"Candidate-rule evaluations executed by the engine."),
		mAssessMemoHits: reg.Counter("egs_assess_memo_hits_total",
			"Candidate assessments answered from the engine's canonical-rule memo."),
		mSessionsActive: reg.Gauge("egs_sessions_active",
			"Incremental sessions currently live."),
		mSessionDeltas: reg.Counter("egs_session_deltas_total",
			"Deltas applied to incremental sessions."),
		mSessionRejected: reg.Counter("egs_session_rejections_total",
			"Session creations rejected with 429 because the store was at capacity."),
		mSessionEvictions: reg.CounterVec("egs_session_evictions_total",
			"Sessions removed from the store, by reason (ttl, delete).", "reason"),
		mSessionMemoRatio: reg.FloatGauge("egs_session_memo_reuse_ratio",
			"Memoized share of candidate assessments across all session solves: hits / (hits + evals)."),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.wg.Add(1)
	go s.sessionJanitor()
	s.log.Info("server ready",
		"workers", cfg.Workers, "queue_depth", cfg.QueueDepth,
		"cache_size", cfg.CacheSize, "default_timeout", cfg.DefaultTimeout)
	return s
}

// worker drains the admission queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.mQueueDepth.Dec()
		s.run(j)
	}
}

// run executes one admitted job and delivers its result.
func (s *Server) run(j *job) {
	// Every dequeued job frees a queue slot, so both outcomes below
	// count as a drain event for the Retry-After estimate.
	defer s.noteDrain()
	if err := j.ctx.Err(); err != nil {
		// The client's deadline expired while the job was queued;
		// don't burn a worker on an answer nobody is waiting for.
		j.done <- jobResult{err: err}
		return
	}
	wait := time.Since(j.enqueuedAt)
	s.mQueueWait.Observe(wait.Seconds())
	s.mInFlight.Inc()
	start := time.Now()
	if s.cfg.SolveDelay > 0 {
		// Injected service time for capacity testing (see
		// Config.SolveDelay); counted as solve time, cancellable.
		select {
		case <-time.After(s.cfg.SolveDelay):
		case <-j.ctx.Done():
		}
	}
	var res egs.Result
	var err error
	if j.do != nil {
		res, err = j.do(j.ctx)
	} else {
		res, err = s.synth(j.ctx, j.task, j.opts)
	}
	dur := time.Since(start)
	s.mInFlight.Dec()
	s.mSolve.Observe(dur.Seconds())
	s.mLatency.Observe((wait + dur).Seconds())
	switch {
	case err != nil:
		s.mSyntheses.With("error").Inc()
	case res.Unsat:
		s.mSyntheses.With("unsat").Inc()
	default:
		s.mSyntheses.With("sat").Inc()
	}
	if err == nil {
		s.mAssessEvals.Add(uint64(res.Stats.CandidatesEvaluated))
		s.mAssessMemoHits.Add(uint64(res.Stats.CandidatesCached))
	}
	j.done <- jobResult{res: res, dur: dur, err: err}
}

// errQueueFull reports an admission rejection.
type admissionError string

func (e admissionError) Error() string { return string(e) }

const (
	errQueueFull = admissionError("synthesis queue is full")
	errDraining  = admissionError("server is draining")
)

// enqueue admits a job or reports why it cannot run. It never blocks:
// backpressure is delivered to the client as 429, not latency.
func (s *Server) enqueue(j *job) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return errDraining
	}
	j.enqueuedAt = time.Now()
	select {
	case s.queue <- j:
		s.mQueueDepth.Inc()
		return nil
	default:
		s.mRejected.Inc()
		return errQueueFull
	}
}

// Shutdown stops admitting work, drains queued and in-flight
// syntheses, and waits for the workers to exit, or until ctx expires.
// The HTTP listener should be shut down first so no new requests race
// the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
		close(s.janitorStop)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.log.Info("server drained")
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Metrics exposes the server's registry (for embedding into a larger
// process's metric surface).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// drainWindow is how many recent drain events feed the Retry-After
// rate estimate. Small enough to track regime changes, large enough
// to smooth per-task variance.
const drainWindow = 32

// noteDrain records that one queued job left the queue.
func (s *Server) noteDrain() {
	s.drainMu.Lock()
	s.drainTimes[s.drainCount%drainWindow] = time.Now()
	s.drainCount++
	s.drainMu.Unlock()
}

// retryAfterSeconds estimates how long a rejected client should wait
// before the queue has likely drained: current depth divided by the
// observed drain rate over the last drainWindow completions, clamped
// to [1, MaxTimeout]. With fewer than two drain observations there is
// no rate to extrapolate and the floor applies.
func (s *Server) retryAfterSeconds() int {
	maxRetry := int(s.cfg.MaxTimeout / time.Second)
	if maxRetry < 1 {
		maxRetry = 1
	}
	depth := len(s.queue)
	s.drainMu.Lock()
	n := min(s.drainCount, drainWindow)
	var oldest, newest time.Time
	if n > 0 {
		newest = s.drainTimes[(s.drainCount-1)%drainWindow]
		oldest = s.drainTimes[(s.drainCount-n)%drainWindow]
	}
	s.drainMu.Unlock()
	if n < 2 || depth == 0 {
		return 1
	}
	span := newest.Sub(oldest)
	if span <= 0 {
		return 1
	}
	perJob := span / time.Duration(n-1)
	retry := int((time.Duration(depth)*perJob + time.Second - 1) / time.Second)
	if retry < 1 {
		retry = 1
	}
	if retry > maxRetry {
		retry = maxRetry
	}
	return retry
}
