package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
)

// RoutingHash parses a /synthesize (or /sessions create) body exactly
// as the server would and returns the task's canonical digest — the
// same hash that prefixes the server's result-cache key. The router
// uses it so that its placement of a request and the replica's caching
// of the response agree byte-for-byte. Bodies that fail to parse fall
// back to a digest of the raw bytes: routing stays deterministic and
// the replica stays the single authority on request validation.
func RoutingHash(contentType string, body []byte) string {
	if t, _, _, err := parseRequest(contentType, bytes.NewReader(body)); err == nil {
		return t.CanonicalHash()
	}
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}
