package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// kinshipVariant returns the kinship benchmark with its example set
// replaced, leaving the schema, facts, and domain — the BaseHash —
// unchanged.
func kinshipVariant(t *testing.T, examples []string) string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join(benchDir, "kinship.task"))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "+") || strings.HasPrefix(trimmed, "-") ||
			strings.HasPrefix(trimmed, "intended ") {
			continue
		}
		b.WriteString(line)
		b.WriteString("\n")
	}
	for _, ex := range examples {
		b.WriteString(ex)
		b.WriteString("\n")
	}
	return b.String()
}

// TestSnapshotAdoptionDifferential checks that a request adopting a
// cached interned-database snapshot produces byte-identical output to
// the same request solved from its own fresh parse.
func TestSnapshotAdoptionDifferential(t *testing.T) {
	variant := kinshipVariant(t, []string{
		"+child(Simba, Sarabi).",
		"+child(Simba, Mufasa).",
		"+child(Kiara, Nala).",
		"+child(Kiara, Simba).",
	})

	// Shared server: the full benchmark seeds the snapshot, the variant
	// (same base, different examples) adopts it.
	s, ts := newTestServer(t, Config{Workers: 1, CacheSize: -1})
	src, err := os.ReadFile(filepath.Join(benchDir, "kinship.task"))
	if err != nil {
		t.Fatal(err)
	}
	if _, sr := post(t, ts.URL+"/synthesize", "text/plain", string(src)); sr.Status != "sat" {
		t.Fatalf("seeding solve status %q (%s)", sr.Status, sr.Error)
	}
	_, adopted := post(t, ts.URL+"/synthesize", "text/plain", variant)
	if adopted.Status != "sat" {
		t.Fatalf("adopted solve status %q (%s)", adopted.Status, adopted.Error)
	}
	if got := s.mSnapshotHits.Value(); got != 1 {
		t.Errorf("egs_snapshot_hits_total = %d, want 1 (adoption did not happen)", got)
	}

	// Fresh server: the variant solved with no snapshot to adopt.
	_, tsFresh := newTestServer(t, Config{Workers: 1, CacheSize: -1})
	_, fresh := post(t, tsFresh.URL+"/synthesize", "text/plain", variant)
	if fresh.Status != "sat" {
		t.Fatalf("fresh solve status %q (%s)", fresh.Status, fresh.Error)
	}
	if adopted.Datalog != fresh.Datalog {
		t.Errorf("adopted and fresh solves disagree:\n%s\nvs\n%s", adopted.Datalog, fresh.Datalog)
	}
	if adopted.SQL != fresh.SQL {
		t.Errorf("adopted and fresh SQL disagree:\n%s\nvs\n%s", adopted.SQL, fresh.SQL)
	}
	if adopted.TaskHash != fresh.TaskHash {
		t.Errorf("adopted and fresh task hashes disagree: %s vs %s", adopted.TaskHash, fresh.TaskHash)
	}
}

// TestSnapshotFallbackOnForeignConstant checks that a request whose
// examples mention a constant outside the shared snapshot's domain
// falls back to its own parse instead of mutating the shared domain.
func TestSnapshotFallbackOnForeignConstant(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, CacheSize: -1})
	src, err := os.ReadFile(filepath.Join(benchDir, "kinship.task"))
	if err != nil {
		t.Fatal(err)
	}
	if _, sr := post(t, ts.URL+"/synthesize", "text/plain", string(src)); sr.Status != "sat" {
		t.Fatalf("seeding solve status %q (%s)", sr.Status, sr.Error)
	}

	// Same base (facts unchanged), but one example names a constant the
	// cached snapshot's domain has never interned. BaseHash ignores the
	// domain table, so the bases match; adoption must then refuse
	// rather than intern Scar into the shared domain.
	variant := kinshipVariant(t, []string{
		"+child(Scar, Sarabi).",
		"+child(Simba, Sarabi).",
		"+child(Simba, Mufasa).",
		"+child(Kiara, Nala).",
		"+child(Kiara, Simba).",
	})

	resp, sr := post(t, ts.URL+"/synthesize", "text/plain", variant)
	if resp.StatusCode != 200 {
		t.Fatalf("fallback solve HTTP %d (%s)", resp.StatusCode, sr.Error)
	}
	if sr.Status == "error" {
		t.Fatalf("fallback solve errored: %s", sr.Error)
	}
	if got := s.mSnapshotFallbacks.Value(); got < 1 {
		t.Errorf("egs_snapshot_fallbacks_total = %d, want >= 1", got)
	}
	if got := s.mSnapshotHits.Value(); got != 0 {
		t.Errorf("egs_snapshot_hits_total = %d, want 0", got)
	}
}
