// traceStore retains the most recent request traces for retrieval via
// GET /debug/traces/{id}. It is a debugging aid, not an archive: the
// store is capped, old traces are evicted FIFO, and nothing survives a
// restart. Traces can be large (a Chrome trace of a hard task runs to
// megabytes), which is why requests opt in per call and the cap is
// small.

package server

import (
	"strconv"
	"sync"
)

// traceStoreCap bounds the number of traces retained server-wide.
const traceStoreCap = 16

type traceStore struct {
	mu      sync.Mutex
	cap     int
	seq     int
	entries map[string][]byte
	order   []string // insertion order, oldest first
}

func newTraceStore(capacity int) *traceStore {
	return &traceStore{cap: capacity, entries: make(map[string][]byte)}
}

// put stores a rendered trace and returns its retrieval id, evicting
// the oldest entry when the store is full.
func (ts *traceStore) put(b []byte) string {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.seq++
	id := "t" + strconv.Itoa(ts.seq)
	for len(ts.order) >= ts.cap {
		delete(ts.entries, ts.order[0])
		ts.order = ts.order[1:]
	}
	ts.entries[id] = b
	ts.order = append(ts.order, id)
	return id
}

// get returns the trace stored under id, if it has not been evicted.
func (ts *traceStore) get(id string) ([]byte, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	b, ok := ts.entries[id]
	return b, ok
}

// len reports the number of resident traces.
func (ts *traceStore) len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.entries)
}
