package server

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used cache mapping
// canonical task keys to completed synthesis responses. It is safe
// for concurrent use; Get promotes the entry to most-recently-used.
//
// Synthesis is deterministic for a given (task, options) pair, so
// cached verdicts — sat programs and unsat proofs alike — never go
// stale; eviction is purely a memory bound.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

// newLRU returns a cache holding up to capacity entries; capacity <= 0
// returns a nil cache, on which Get and Put are no-ops.
func newLRU(capacity int) *lruCache {
	if capacity <= 0 {
		return nil
	}
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached value for key, promoting it.
func (c *lruCache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts or refreshes key, evicting the least-recently-used
// entry when over capacity.
func (c *lruCache) Put(key string, val any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Len reports the number of cached entries.
func (c *lruCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
