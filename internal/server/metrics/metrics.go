// Package metrics is a minimal, dependency-free metrics library for
// the synthesis server: counters, labelled counter families, gauges,
// and histograms, rendered in the Prometheus text exposition format
// (version 0.0.4). The repo is standard-library-only by design, so
// the handful of metric kinds the server needs are hand-rolled here
// rather than imported from a client library.
//
// All metric operations are safe for concurrent use. Counters and
// gauges are lock-free (atomics); histograms and labelled families
// take a small mutex.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a gauge holding a float64 (for ratios and rates that
// do not fit the integer Gauge). Lock-free: the value is stored as
// its IEEE-754 bit pattern in a uint64 atomic.
type FloatGauge struct {
	v atomic.Uint64
}

// Set replaces the value.
func (g *FloatGauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// CounterVec is a family of counters partitioned by the values of one
// label. Children are created on first use and live for the life of
// the registry.
type CounterVec struct {
	label string

	mu sync.Mutex
	m  map[string]*Counter
}

// With returns the child counter for the given label value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.m[value]
	if !ok {
		c = &Counter{}
		v.m[value] = c
	}
	return c
}

// GaugeVec is a family of gauges partitioned by the values of one
// label (per-replica health and routing state in the router). As with
// CounterVec, children are created on first use and never removed.
type GaugeVec struct {
	label string

	mu sync.Mutex
	m  map[string]*Gauge
}

// With returns the child gauge for the given label value.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.m[value]
	if !ok {
		g = &Gauge{}
		v.m[value] = g
	}
	return g
}

// Histogram is a cumulative histogram with fixed upper bounds, plus
// the running sum and count, matching the Prometheus histogram type.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds; +Inf is implicit

	mu     sync.Mutex
	counts []uint64 // len(bounds)+1; last bucket is +Inf
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// DefBuckets are latency buckets (seconds) spanning sub-millisecond
// cache hits to the paper's 300 s synthesis budget.
var DefBuckets = []float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// Registry holds named metrics and renders them on demand. Metrics
// must be registered before the registry is first rendered; reads
// never allocate new families.
type Registry struct {
	mu   sync.Mutex
	fams []*family
}

type family struct {
	name, help, typ string
	counter         *Counter
	vec             *CounterVec
	gvec            *GaugeVec
	gauge           *Gauge
	fgauge          *FloatGauge
	hist            *Histogram
}

// New returns an empty registry.
func New() *Registry { return &Registry{} }

func (r *Registry) add(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, existing := range r.fams {
		if existing.name == f.name {
			panic("metrics: duplicate registration of " + f.name)
		}
	}
	r.fams = append(r.fams, f)
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(&family{name: name, help: help, typ: "counter", counter: c})
	return c
}

// CounterVec registers and returns a labelled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{label: label, m: make(map[string]*Counter)}
	r.add(&family{name: name, help: help, typ: "counter", vec: v})
	return v
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&family{name: name, help: help, typ: "gauge", gauge: g})
	return g
}

// GaugeVec registers and returns a labelled gauge family.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	v := &GaugeVec{label: label, m: make(map[string]*Gauge)}
	r.add(&family{name: name, help: help, typ: "gauge", gvec: v})
	return v
}

// FloatGauge registers and returns a float-valued gauge.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	g := &FloatGauge{}
	r.add(&family{name: name, help: help, typ: "gauge", fgauge: g})
	return g
}

// Histogram registers and returns a histogram with the given upper
// bounds (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	h := &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	r.add(&family{name: name, help: help, typ: "histogram", hist: h})
	return h
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		switch {
		case f.counter != nil:
			fmt.Fprintf(bw, "%s %d\n", f.name, f.counter.Value())
		case f.gauge != nil:
			fmt.Fprintf(bw, "%s %d\n", f.name, f.gauge.Value())
		case f.fgauge != nil:
			fmt.Fprintf(bw, "%s %s\n", f.name, formatFloat(f.fgauge.Value()))
		case f.vec != nil:
			writeVec(bw, f)
		case f.gvec != nil:
			writeGaugeVec(bw, f)
		case f.hist != nil:
			writeHistogram(bw, f)
		}
	}
	return bw.Flush()
}

func writeVec(w io.Writer, f *family) {
	f.vec.mu.Lock()
	values := make([]string, 0, len(f.vec.m))
	for v := range f.vec.m {
		values = append(values, v)
	}
	sort.Strings(values)
	lines := make([]string, len(values))
	for i, v := range values {
		lines[i] = fmt.Sprintf("%s{%s=\"%s\"} %d", f.name, f.vec.label, escapeLabel(v), f.vec.m[v].Value())
	}
	f.vec.mu.Unlock()
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}

func writeGaugeVec(w io.Writer, f *family) {
	f.gvec.mu.Lock()
	values := make([]string, 0, len(f.gvec.m))
	for v := range f.gvec.m {
		values = append(values, v)
	}
	sort.Strings(values)
	lines := make([]string, len(values))
	for i, v := range values {
		lines[i] = fmt.Sprintf("%s{%s=\"%s\"} %d", f.name, f.gvec.label, escapeLabel(v), f.gvec.m[v].Value())
	}
	f.gvec.mu.Unlock()
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}

func writeHistogram(w io.Writer, f *family) {
	h := f.hist
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, count := h.sum, h.count
	h.mu.Unlock()
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", f.name, formatFloat(b), cum)
	}
	cum += counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", f.name, formatFloat(sum))
	fmt.Fprintf(w, "%s_count %d\n", f.name, count)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

// Handler returns an http.Handler serving the rendered registry,
// suitable for mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
