package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestRenderAllKinds(t *testing.T) {
	r := New()
	c := r.Counter("jobs_total", "Jobs processed.")
	v := r.CounterVec("requests_total", "Requests by status.", "code")
	g := r.Gauge("queue_depth", "Queued jobs.")
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1})

	c.Add(3)
	v.With("200").Inc()
	v.With("200").Inc()
	v.With("429").Inc()
	g.Set(7)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP jobs_total Jobs processed.",
		"# TYPE jobs_total counter",
		"jobs_total 3",
		`requests_total{code="200"} 2`,
		`requests_total{code="429"} 1`,
		"# TYPE queue_depth gauge",
		"queue_depth 7",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_sum 5.5", // prefix: exact decimal repr of the float sum may carry ulps
		"latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestHistogramBucketBoundaryInclusive(t *testing.T) {
	r := New()
	h := r.Histogram("h", "h", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive, per Prometheus semantics
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `h_bucket{le="1"} 1`) {
		t.Errorf("observation at bound not counted in its bucket:\n%s", b.String())
	}
}

func TestGaugeUpDown(t *testing.T) {
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Errorf("gauge = %d, want 1", got)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := New()
	c := r.Counter("c", "c")
	v := r.CounterVec("v", "v", "l")
	g := r.Gauge("g", "g")
	h := r.Histogram("h", "h", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				v.With("x").Inc()
				g.Inc()
				h.Observe(float64(j) / 100)
			}
		}(i)
	}
	// Render concurrently with the writers.
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := v.With("x").Value(); got != 8000 {
		t.Errorf("vec counter = %d, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r := New()
	r.Counter("dup", "first")
	r.Counter("dup", "second")
}

func TestHandler(t *testing.T) {
	r := New()
	r.Counter("up", "Server up.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "up 1") {
		t.Errorf("body missing metric:\n%s", rec.Body.String())
	}
}
