package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/egs-synthesis/egs"
)

// TestSingleflightStampede drives N concurrent identical uncached
// requests into the server and checks that exactly one synthesis runs
// (asserted both on the engine hook and on the egs_assess_evals_total
// delta) while every caller receives the same answer.
func TestSingleflightStampede(t *testing.T) {
	const n = 16
	src, err := os.ReadFile(filepath.Join(benchDir, "kinship.task"))
	if err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	var calls atomic.Int64
	cfg := Config{
		Workers:   2,
		CacheSize: -1, // disable the result cache: every request is a miss
		synthesize: func(ctx context.Context, tk *egs.Task, o egs.Options) (egs.Result, error) {
			calls.Add(1)
			select {
			case <-gate:
			case <-ctx.Done():
				return egs.Result{}, ctx.Err()
			}
			return egs.Synthesize(ctx, tk, o)
		},
	}
	s, ts := newTestServer(t, cfg)

	results := make(chan *SynthesisResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sr := post(t, ts.URL+"/synthesize", "text/plain", string(src))
			results <- sr
		}()
	}
	// Hold the gate until every follower has joined the flight, so the
	// stampede is genuinely concurrent rather than serialized by the
	// result the leader publishes.
	deadline := time.Now().Add(10 * time.Second)
	for s.mFlightShared.Value() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers joined the flight", s.mFlightShared.Value(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	close(results)

	if got := calls.Load(); got != 1 {
		t.Errorf("synthesis ran %d times for %d concurrent identical requests, want 1", got, n)
	}
	var datalog string
	coalesced := 0
	for sr := range results {
		if sr.Status != "sat" {
			t.Fatalf("stampede response status %q (%s), want sat", sr.Status, sr.Error)
		}
		if datalog == "" {
			datalog = sr.Datalog
		} else if sr.Datalog != datalog {
			t.Errorf("stampede responses disagree:\n%s\nvs\n%s", datalog, sr.Datalog)
		}
		if sr.Coalesced {
			coalesced++
		}
	}
	if coalesced != n-1 {
		t.Errorf("%d responses marked coalesced, want %d", coalesced, n-1)
	}
	if got := s.mFlightLeaders.Value(); got != 1 {
		t.Errorf("egs_singleflight_leaders_total = %d, want 1", got)
	}

	// The assess-evals delta must equal that of a single solo solve:
	// the stampede cost one search, not sixteen.
	solo, tsSolo := newTestServer(t, Config{Workers: 1, CacheSize: -1})
	if _, sr := post(t, tsSolo.URL+"/synthesize", "text/plain", string(src)); sr.Status != "sat" {
		t.Fatalf("solo solve status %q", sr.Status)
	}
	if stampede, one := s.mAssessEvals.Value(), solo.mAssessEvals.Value(); stampede != one {
		t.Errorf("egs_assess_evals_total after stampede = %d, want the solo-solve delta %d", stampede, one)
	}
}

// TestSingleflightCancellationDoesNotPoison checks the two lifetime
// guarantees of the flight context: one caller hanging up (even the
// leader) leaves the flight running for the rest, and the engine is
// cancelled only when every caller has gone.
func TestSingleflightCancellationDoesNotPoison(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(benchDir, "kinship.task"))
	if err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	engineCtx := make(chan context.Context, 2)
	cfg := Config{
		Workers:   1,
		CacheSize: -1,
		synthesize: func(ctx context.Context, tk *egs.Task, o egs.Options) (egs.Result, error) {
			engineCtx <- ctx
			select {
			case <-gate:
			case <-ctx.Done():
				return egs.Result{}, ctx.Err()
			}
			return egs.Synthesize(ctx, tk, o)
		},
	}
	s, ts := newTestServer(t, cfg)

	issue := func(ctx context.Context, url, body string, out chan<- *SynthesisResponse) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/synthesize", strings.NewReader(body))
		if err != nil {
			t.Error(err)
			out <- nil
			return
		}
		req.Header.Set("Content-Type", "text/plain")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			out <- nil // cancelled caller: no response
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		sr := &SynthesisResponse{}
		if err := json.Unmarshal(b, sr); err != nil {
			t.Errorf("decoding response: %v", err)
			out <- nil
			return
		}
		out <- sr
	}

	// Leader plus two followers on one flight; then the leader's client
	// hangs up mid-synthesis.
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	leaderOut := make(chan *SynthesisResponse, 1)
	go issue(leaderCtx, ts.URL, string(src), leaderOut)
	ectx := <-engineCtx // leader's engine run has started
	followerOut := make(chan *SynthesisResponse, 2)
	go issue(context.Background(), ts.URL, string(src), followerOut)
	go issue(context.Background(), ts.URL, string(src), followerOut)
	deadline := time.Now().Add(10 * time.Second)
	for s.mFlightShared.Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("followers never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}

	cancelLeader()
	<-leaderOut
	// The flight must survive the leader's departure: two followers are
	// still waiting.
	time.Sleep(50 * time.Millisecond)
	select {
	case <-ectx.Done():
		t.Fatal("leader cancellation cancelled the shared engine run")
	default:
	}
	close(gate)
	for i := 0; i < 2; i++ {
		sr := <-followerOut
		if sr == nil || sr.Status != "sat" {
			t.Fatalf("follower after leader cancel: %+v", sr)
		}
		if !sr.Coalesced {
			t.Error("follower response not marked coalesced")
		}
	}

	// Second server, fresh gate: when every caller hangs up, the engine
	// must be cancelled rather than left running detached.
	gate2 := make(chan struct{})
	defer close(gate2)
	engineCtx2 := make(chan context.Context, 1)
	cfg2 := Config{
		Workers:   1,
		CacheSize: -1,
		synthesize: func(ctx context.Context, tk *egs.Task, o egs.Options) (egs.Result, error) {
			engineCtx2 <- ctx
			select {
			case <-gate2:
			case <-ctx.Done():
			}
			return egs.Result{}, ctx.Err()
		},
	}
	s2, ts2 := newTestServer(t, cfg2)
	allCtx, cancelAll := context.WithCancel(context.Background())
	defer cancelAll()
	out2 := make(chan *SynthesisResponse, 2)
	go issue(allCtx, ts2.URL, string(src), out2)
	ectx2 := <-engineCtx2
	go issue(allCtx, ts2.URL, string(src), out2)
	for s2.mFlightShared.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second-flight follower never joined")
		}
		time.Sleep(time.Millisecond)
	}
	cancelAll()
	select {
	case <-ectx2.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("engine run not cancelled after every caller left")
	}
	<-out2
	<-out2
}
