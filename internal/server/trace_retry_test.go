package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/egs-synthesis/egs"
)

// TestRetryAfterDerivation pins the Retry-After computation: queue
// depth over observed drain rate, floored at 1s and capped at the
// server's MaxTimeout.
func TestRetryAfterDerivation(t *testing.T) {
	s := &Server{cfg: Config{MaxTimeout: 10 * time.Second}, queue: make(chan *job, 64)}
	if got := s.retryAfterSeconds(); got != 1 {
		t.Errorf("no drain history: retry = %d, want 1", got)
	}
	for i := 0; i < 8; i++ {
		s.queue <- &job{}
	}
	// Synthesize a drain history of one completion every 500ms.
	base := time.Now().Add(-time.Minute)
	for i := 0; i < drainWindow; i++ {
		s.drainTimes[i] = base.Add(time.Duration(i) * 500 * time.Millisecond)
	}
	s.drainCount = drainWindow
	if got := s.retryAfterSeconds(); got != 4 {
		t.Errorf("8 deep draining 2 jobs/s: retry = %d, want 4", got)
	}
	// Slow drain: 5s per job and 8 jobs deep extrapolates to 40s,
	// which must clamp to MaxTimeout.
	for i := 0; i < drainWindow; i++ {
		s.drainTimes[i] = base.Add(time.Duration(i) * 5 * time.Second)
	}
	if got := s.retryAfterSeconds(); got != 10 {
		t.Errorf("slow drain: retry = %d, want 10 (clamped to MaxTimeout)", got)
	}
	// A single observation gives no rate to extrapolate.
	s.drainCount = 1
	if got := s.retryAfterSeconds(); got != 1 {
		t.Errorf("one observation: retry = %d, want 1", got)
	}
}

// TestAbandonedQueueDoesNotStarveLiveRequest fills the queue with jobs
// whose clients already gave up and checks that a live request queued
// behind them is answered promptly: the worker skips cancelled jobs
// instead of executing each to its deadline.
func TestAbandonedQueueDoesNotStarveLiveRequest(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{})
	var runs atomic.Int64
	cfg := Config{
		Workers:    1,
		QueueDepth: 8,
		CacheSize:  -1,
		Logger:     discardLogger(),
		synthesize: func(ctx context.Context, tk *egs.Task, o egs.Options) (egs.Result, error) {
			if runs.Add(1) == 1 {
				close(started)
				<-gate
			}
			return egs.Result{}, nil
		},
	}
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})

	// Occupy the only worker.
	blocker := &job{ctx: context.Background(), done: make(chan jobResult, 1)}
	if err := s.enqueue(blocker); err != nil {
		t.Fatal(err)
	}
	<-started

	// Queue seven abandoned jobs ahead of one live request.
	cancelledCtx, cancel := context.WithCancel(context.Background())
	cancel()
	var abandoned []*job
	for i := 0; i < 7; i++ {
		j := &job{ctx: cancelledCtx, done: make(chan jobResult, 1)}
		if err := s.enqueue(j); err != nil {
			t.Fatalf("abandoned job %d: %v", i, err)
		}
		abandoned = append(abandoned, j)
	}
	live := &job{ctx: context.Background(), done: make(chan jobResult, 1)}
	if err := s.enqueue(live); err != nil {
		t.Fatal(err)
	}

	close(gate)
	select {
	case jr := <-live.done:
		if jr.err != nil {
			t.Fatalf("live job failed: %v", jr.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live request starved behind abandoned jobs")
	}
	for i, j := range abandoned {
		select {
		case jr := <-j.done:
			if !errors.Is(jr.err, context.Canceled) {
				t.Errorf("abandoned job %d: err = %v, want context.Canceled", i, jr.err)
			}
		case <-time.After(time.Second):
			t.Errorf("abandoned job %d never answered", i)
		}
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("synthesis ran %d times, want 2 (blocker + live; abandoned jobs must be skipped)", got)
	}
}

// chromeTraceShape is the subset of the Chrome trace-event format the
// server tests validate.
type chromeTraceShape struct {
	TraceEvents []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
	} `json:"traceEvents"`
}

func checkChromeTrace(t *testing.T, raw []byte) {
	t.Helper()
	var tr chromeTraceShape
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("trace is not valid Chrome trace JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	kinds := make(map[string]bool)
	for _, e := range tr.TraceEvents {
		kinds[e.Name] = true
	}
	for _, want := range []string{"cell", "pop", "assess"} {
		if !kinds[want] {
			t.Errorf("trace missing %q events", want)
		}
	}
}

// TestTraceInline requests an inline trace and validates its shape and
// that traced requests bypass the result cache in both directions.
func TestTraceInline(t *testing.T) {
	var runs atomic.Int64
	cfg := Config{Workers: 1, synthesize: func(ctx context.Context, tk *egs.Task, o egs.Options) (egs.Result, error) {
		runs.Add(1)
		return egs.Synthesize(ctx, tk, o)
	}}
	_, ts := newTestServer(t, cfg)

	// Prime the cache with an untraced run.
	resp, sr := post(t, ts.URL+"/synthesize", "application/json", kinshipJSON(t, nil))
	if resp.StatusCode != http.StatusOK || sr.Status != "sat" {
		t.Fatalf("untraced: status %d/%q (%s)", resp.StatusCode, sr.Status, sr.Error)
	}

	// The traced request must run a fresh synthesis despite the cache.
	resp, sr = post(t, ts.URL+"/synthesize", "application/json", kinshipJSON(t, &RequestOptions{Trace: "inline"}))
	if resp.StatusCode != http.StatusOK || sr.Status != "sat" {
		t.Fatalf("traced: status %d/%q (%s)", resp.StatusCode, sr.Status, sr.Error)
	}
	if sr.Cached {
		t.Error("traced request reported cached")
	}
	if len(sr.Trace) == 0 {
		t.Fatal("inline trace missing from response")
	}
	checkChromeTrace(t, sr.Trace)
	if got := runs.Load(); got != 2 {
		t.Errorf("synthesis ran %d times, want 2 (traced request must bypass the cache)", got)
	}

	// The traced run must not have poisoned the cache: an untraced
	// request is still served from the original entry, without a trace.
	_, sr = post(t, ts.URL+"/synthesize", "application/json", kinshipJSON(t, nil))
	if !sr.Cached {
		t.Error("untraced request after traced run not served from cache")
	}
	if len(sr.Trace) != 0 || sr.TraceID != "" {
		t.Error("cached untraced response carries trace data")
	}
}

// TestTraceStoreAndFetch requests a stored trace and fetches it back
// from /debug/traces/{id}.
func TestTraceStoreAndFetch(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, sr := post(t, ts.URL+"/synthesize", "application/json", kinshipJSON(t, &RequestOptions{Trace: "store"}))
	if resp.StatusCode != http.StatusOK || sr.Status != "sat" {
		t.Fatalf("status %d/%q (%s)", resp.StatusCode, sr.Status, sr.Error)
	}
	if sr.TraceID == "" {
		t.Fatal("store mode returned no trace_id")
	}
	if len(sr.Trace) != 0 {
		t.Error("store mode also returned an inline trace")
	}
	r, err := http.Get(ts.URL + "/debug/traces/" + sr.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s: status %d", sr.TraceID, r.StatusCode)
	}
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	checkChromeTrace(t, raw)

	// Unknown ids are 404, not 500.
	r2, err := http.Get(ts.URL + "/debug/traces/nonexistent")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace id: status %d, want 404", r2.StatusCode)
	}
}

// TestTraceBadMode rejects unknown trace modes up front.
func TestTraceBadMode(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, sr := post(t, ts.URL+"/synthesize", "application/json", kinshipJSON(t, &RequestOptions{Trace: "bogus"}))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(sr.Error, "trace mode") {
		t.Errorf("error %q does not mention the trace mode", sr.Error)
	}
}

// TestTraceStoreEviction pins the FIFO cap of the trace store.
func TestTraceStoreEviction(t *testing.T) {
	ts := newTraceStore(2)
	a := ts.put([]byte("a"))
	b := ts.put([]byte("b"))
	c := ts.put([]byte("c"))
	if _, ok := ts.get(a); ok {
		t.Error("oldest trace not evicted at capacity")
	}
	for _, id := range []string{b, c} {
		if _, ok := ts.get(id); !ok {
			t.Errorf("trace %s missing", id)
		}
	}
	if ts.len() != 2 {
		t.Errorf("store holds %d traces, want 2", ts.len())
	}
}

// TestPprofMounted checks the profiling endpoints ride on the service
// mux.
func TestPprofMounted(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/: status %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "goroutine") {
		t.Error("pprof index does not list profiles")
	}
}
