// Copy-on-write sharing of interned-database snapshots across
// requests on the same extensional base. Parsing a task builds and
// indexes a fresh relation.Database per request; for workloads that
// ask many questions over one dataset (the common shape once clients
// keep a schema and vary examples), that work is identical every
// time. The snapshot cache keys prepared tasks by Task.BaseHash — the
// canonical digest minus the example labels — and later requests with
// an equal base adopt the cached task's database via
// Task.AdoptExamples, interning only their example tuples.
//
// Adoption is safe under full request concurrency because it never
// mutates shared state destructively: the base database is frozen
// (PR 2 semantics), example tuples go through the lock-protected
// interning table, and no facts are ever inserted, so the generation
// stamps that guard TupleID stability and the column caches are never
// invalidated. Requests whose examples mention constants outside the
// shared domain fall back to their own parsed task (interning a new
// constant would race concurrent readers of the domain).
//
// Incremental sessions never adopt snapshots: sessions insert facts
// (overlay generations), which is a between-runs mutation that must
// not race other requests reading the same database.

package server

import "github.com/egs-synthesis/egs"

// adoptSnapshot returns the task to synthesize: t itself when its
// base is new (seeding the cache) or unadoptable, or a task sharing
// the cached base's interned database when one matches.
func (s *Server) adoptSnapshot(t *egs.Task) *egs.Task {
	if s.snapshots == nil {
		return t
	}
	base := t.BaseHash()
	v, ok := s.snapshots.Get(base)
	if !ok {
		s.mSnapshotMisses.Inc()
		s.snapshots.Put(base, t)
		return t
	}
	shared, ok, err := v.(*egs.Task).AdoptExamples(t)
	if err != nil || !ok {
		if err != nil {
			s.log.Warn("snapshot adoption failed", "task", t.Name(), "err", err)
		}
		s.mSnapshotFallbacks.Inc()
		return t
	}
	s.mSnapshotHits.Inc()
	return shared
}
