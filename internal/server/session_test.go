package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// gpTaskJSON is a grandparent task whose answer flips to the plain
// parent rule when the labels are revised (see the regression test).
const gpTaskJSON = `{
  "name": "gp",
  "inputs": [{"name": "parent", "arity": 2}],
  "outputs": [{"name": "grandparent", "arity": 2}],
  "facts": [
    {"rel": "parent", "args": ["alice", "bob"]},
    {"rel": "parent", "args": ["bob", "carol"]},
    {"rel": "parent", "args": ["carol", "dave"]}
  ],
  "positive": [
    {"rel": "grandparent", "args": ["alice", "carol"]},
    {"rel": "grandparent", "args": ["bob", "dave"]}
  ],
  "negative": [{"rel": "grandparent", "args": ["alice", "bob"]}]
}`

func postSession(t *testing.T, url, body string) (*http.Response, *SessionResponse) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decoding session response: %v", err)
	}
	return resp, &sr
}

func deleteSession(t *testing.T, url, id string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url+"/sessions/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestSessionLifecycle drives create → delta → status → delete over
// HTTP and asserts the session metric families along the way.
func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp, sr := postSession(t, ts.URL+"/sessions", gpTaskJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d (%s)", resp.StatusCode, sr.Error)
	}
	if sr.Status != "sat" || sr.SessionID == "" || sr.Revision != 0 {
		t.Fatalf("create: %+v", sr)
	}
	want := "grandparent(x, z) :- parent(x, y), parent(y, z)."
	if strings.TrimSpace(sr.Datalog) != want {
		t.Errorf("create datalog = %q, want %q", sr.Datalog, want)
	}
	id := sr.SessionID

	// Stage a fact without solving, then solve in a second call.
	resp, sr = postSession(t, ts.URL+"/sessions/"+id+"/delta",
		`{"deltas": [{"op": "add_fact", "rel": "parent", "args": ["dave", "erin"]}], "solve": false}`)
	if resp.StatusCode != http.StatusOK || sr.Status != "pending" || !sr.Pending {
		t.Fatalf("staged delta: status %d, %+v", resp.StatusCode, sr)
	}
	resp, sr = postSession(t, ts.URL+"/sessions/"+id+"/delta",
		`{"deltas": [{"op": "add_example", "positive": true, "rel": "grandparent", "args": ["carol", "erin"]}]}`)
	if resp.StatusCode != http.StatusOK || sr.Status != "sat" {
		t.Fatalf("delta solve: status %d (%s)", resp.StatusCode, sr.Error)
	}
	if sr.Revision != 1 || sr.DeltasApplied != 2 || sr.Pending {
		t.Errorf("delta solve state: %+v", sr)
	}
	if strings.TrimSpace(sr.Datalog) != want {
		t.Errorf("warm datalog = %q, want %q", sr.Datalog, want)
	}
	if sr.Cached {
		t.Error("session solve claimed to be served from the result cache")
	}

	// An example-only revision (toggle one label back to itself) runs
	// against a memo no fact delta has disturbed: the assessments come
	// back as revalidation hits.
	resp, sr = postSession(t, ts.URL+"/sessions/"+id+"/delta", `{"deltas": [
	  {"op": "remove_example", "rel": "grandparent", "args": ["carol", "erin"]},
	  {"op": "add_example", "positive": true, "rel": "grandparent", "args": ["carol", "erin"]}
	]}`)
	if resp.StatusCode != http.StatusOK || sr.Status != "sat" {
		t.Fatalf("toggle delta: status %d (%s)", resp.StatusCode, sr.Error)
	}
	if sr.Revision != 2 || sr.DeltasApplied != 4 {
		t.Errorf("toggle delta state: %+v", sr)
	}
	if strings.TrimSpace(sr.Datalog) != want {
		t.Errorf("toggled datalog = %q, want %q", sr.Datalog, want)
	}
	if sr.Stats == nil || sr.Stats.CandidatesCached == 0 {
		t.Errorf("example-only revision reported no cached candidates: %+v", sr.Stats)
	}

	// Status endpoint never solves.
	st, err := http.Get(ts.URL + "/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var status SessionStatus
	if err := json.NewDecoder(st.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	st.Body.Close()
	if status.SessionID != id || status.Revision != 2 || status.Facts != 4 || status.PosExamples != 3 {
		t.Errorf("status = %+v", status)
	}

	m := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"egs_sessions_active 1",
		"egs_session_deltas_total 4",
		"egs_session_memo_reuse_ratio 0.",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	if resp := deleteSession(t, ts.URL, id); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if resp := deleteSession(t, ts.URL, id); resp.StatusCode != http.StatusNotFound {
		t.Errorf("double delete: status %d, want 404", resp.StatusCode)
	}
	m = scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"egs_sessions_active 0",
		`egs_session_evictions_total{reason="delete"} 1`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSessionBypassesResultCache is the stale-answer regression test:
// a session revision must never be served from (or seed) the
// canonical-hash result cache, even when the one-shot path has a
// cached answer for the same task.
func TestSessionBypassesResultCache(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	// Seed the one-shot result cache.
	resp, one := post(t, ts.URL+"/synthesize", "application/json", gpTaskJSON)
	if resp.StatusCode != http.StatusOK || one.Status != "sat" {
		t.Fatalf("synthesize: %d %+v", resp.StatusCode, one)
	}
	_, oneAgain := post(t, ts.URL+"/synthesize", "application/json", gpTaskJSON)
	if !oneAgain.Cached {
		t.Fatal("second one-shot request was not cached; cache not exercised")
	}
	gpRule := strings.TrimSpace(one.Datalog)

	// A session over the same task must synthesize, not replay.
	resp, sr := postSession(t, ts.URL+"/sessions", gpTaskJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: %d (%s)", resp.StatusCode, sr.Error)
	}
	if sr.Cached {
		t.Error("session creation solve served from the result cache")
	}
	id := sr.SessionID

	// Revise the labels so the answer changes: the parent pairs become
	// the positives, the old grandparent pairs the negatives.
	resp, sr = postSession(t, ts.URL+"/sessions/"+id+"/delta", `{"deltas": [
      {"op": "relabel", "positive": false, "rel": "grandparent", "args": ["alice", "carol"]},
      {"op": "relabel", "positive": false, "rel": "grandparent", "args": ["bob", "dave"]},
      {"op": "relabel", "positive": true, "rel": "grandparent", "args": ["alice", "bob"]}
    ]}`)
	if resp.StatusCode != http.StatusOK || sr.Status != "sat" {
		t.Fatalf("delta: %d (%s)", resp.StatusCode, sr.Error)
	}
	if sr.Cached {
		t.Error("post-delta solve served from the result cache")
	}
	wantFlipped := "grandparent(x, y) :- parent(x, y)."
	if got := strings.TrimSpace(sr.Datalog); got != wantFlipped {
		t.Errorf("post-delta datalog = %q, want %q", got, wantFlipped)
	}
	if strings.TrimSpace(sr.Datalog) == gpRule {
		t.Error("delta served the stale pre-delta answer")
	}

	// The one-shot cache entry must be untouched by session activity.
	_, final := post(t, ts.URL+"/synthesize", "application/json", gpTaskJSON)
	if !final.Cached || strings.TrimSpace(final.Datalog) != gpRule {
		t.Errorf("one-shot cache polluted: cached=%v datalog=%q", final.Cached, final.Datalog)
	}
}

// TestSessionCapRejects: a full session store answers 429 with a
// Retry-After hint and counts the rejection.
func TestSessionCapRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, SessionCap: 1})

	resp, sr := postSession(t, ts.URL+"/sessions", gpTaskJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first create: %d (%s)", resp.StatusCode, sr.Error)
	}
	resp, sr = postSession(t, ts.URL+"/sessions", gpTaskJSON)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second create: status %d, want 429 (%s)", resp.StatusCode, sr.Error)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if m := scrapeMetrics(t, ts.URL); !strings.Contains(m, "egs_session_rejections_total 1") {
		t.Error("metrics missing egs_session_rejections_total 1")
	}
}

// TestSessionTTLExpiry: an idle session ages out and later lookups
// answer 404, counting a ttl eviction.
func TestSessionTTLExpiry(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, SessionTTL: 50 * time.Millisecond})

	resp, sr := postSession(t, ts.URL+"/sessions", gpTaskJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: %d (%s)", resp.StatusCode, sr.Error)
	}
	time.Sleep(80 * time.Millisecond)
	st, err := http.Get(ts.URL + "/sessions/" + sr.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	st.Body.Close()
	if st.StatusCode != http.StatusNotFound {
		t.Fatalf("expired session lookup: status %d, want 404", st.StatusCode)
	}
	if m := scrapeMetrics(t, ts.URL); !strings.Contains(m, `egs_session_evictions_total{reason="ttl"} 1`) {
		t.Error("metrics missing ttl eviction count")
	}
}

// TestSessionDeltaErrors: malformed deltas answer 400 naming the
// failing index; unknown sessions answer 404.
func TestSessionDeltaErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, sr := postSession(t, ts.URL+"/sessions/deadbeef/delta", `{"deltas": []}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: status %d", resp.StatusCode)
	}

	resp, sr = postSession(t, ts.URL+"/sessions", gpTaskJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: %d (%s)", resp.StatusCode, sr.Error)
	}
	id := sr.SessionID
	for _, body := range []string{
		`{"deltas": [{"op": "warp", "rel": "parent", "args": ["a", "b"]}]}`,
		`{"deltas": [{"op": "add_fact", "rel": "nosuch", "args": ["a", "b"]}]}`,
		`{"deltas": [{"op": "add_example", "positive": true, "rel": "grandparent", "args": ["alice"]}]}`,
		`{"bogus_field": 1}`,
	} {
		resp, sr = postSession(t, ts.URL+"/sessions/"+id+"/delta", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400 (%s)", body, resp.StatusCode, sr.Error)
		}
	}
}
