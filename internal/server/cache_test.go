package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", 3) // evicts b: a was touched more recently
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Errorf("a = %v, %v; want 1, true", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v.(int) != 3 {
		t.Errorf("c = %v, %v; want 3, true", v, ok)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestLRURefresh(t *testing.T) {
	c := newLRU(2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh, not insert
	c.Put("c", 3)  // evicts b
	if v, ok := c.Get("a"); !ok || v.(int) != 10 {
		t.Errorf("a = %v, %v; want 10, true", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
}

func TestLRUNilIsNoop(t *testing.T) {
	var c *lruCache
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Error("nil cache returned a hit")
	}
	if c.Len() != 0 {
		t.Error("nil cache has nonzero length")
	}
	if newLRU(0) != nil {
		t.Error("newLRU(0) should return the nil no-op cache")
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := newLRU(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%32)
				c.Put(k, i)
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Errorf("Len = %d exceeds capacity", c.Len())
	}
}
