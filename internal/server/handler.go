// HTTP surface of the synthesis service: routing, the /synthesize
// request lifecycle (parse → cache probe → admit → await), health and
// metrics endpoints, and structured request logging.

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"github.com/egs-synthesis/egs"
)

// Handler returns the service's HTTP routes wrapped in request
// logging and status accounting:
//
//	POST /synthesize              run (or cache-serve) a synthesis task
//	POST /sessions                create an incremental session
//	POST /sessions/{id}/delta     apply deltas, optionally re-solve
//	GET  /sessions/{id}           session status
//	DELETE /sessions/{id}         drop a session
//	GET  /healthz                 liveness: 200 serving, 503 draining
//	GET  /metrics                 Prometheus text exposition
//	GET  /debug/traces/{id}       fetch a stored request trace
//	GET  /debug/pprof/...         stdlib runtime profiling
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /synthesize", s.handleSynthesize)
	mux.HandleFunc("POST /sessions", s.handleSessionCreate)
	mux.HandleFunc("POST /sessions/{id}/delta", s.handleSessionDelta)
	mux.HandleFunc("GET /sessions/{id}", s.handleSessionGet)
	mux.HandleFunc("DELETE /sessions/{id}", s.handleSessionDelete)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /debug/traces/{id}", s.handleTrace)
	// Runtime profiling rides on the same mux so one listener serves
	// both the synthesis traces and the Go profiles that contextualize
	// them. Registered explicitly: importing net/http/pprof only for
	// its DefaultServeMux side effect would leak the endpoints onto
	// any process that links this package.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s.instrument(mux)
}

// handleTrace serves a stored request trace as Chrome trace-event
// JSON, directly loadable in about://tracing or Perfetto.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	b, ok := s.traces.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, "no such trace (evicted or never stored)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}

// statusRecorder captures the response code for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with structured access logging and the
// requests-by-status counter.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.mRequests.With(strconv.Itoa(rec.code)).Inc()
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.code,
			"duration_ms", float64(time.Since(start).Microseconds())/1000,
			"remote", r.RemoteAddr)
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	draining := s.closed
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"status":"draining"}` + "\n"))
		return
	}
	_, _ = w.Write([]byte(`{"status":"ok"}` + "\n"))
}

// handleSynthesize is the request path of the tentpole: parse either
// request form, probe the result cache, admit onto the bounded queue,
// and await the worker under the request deadline.
func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

	t, reqOpts, timeoutMS, err := parseRequest(r.Header.Get("Content-Type"), r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if pos, neg := t.NumExamples(); pos+neg == 0 {
		// A task with no labelled tuples is vacuously sat (the empty
		// query); answering it would only pollute the cache and mask
		// client bugs like an empty body.
		s.writeError(w, http.StatusBadRequest, "task declares no labelled output tuples; nothing to synthesize")
		return
	}
	opts, err := s.resolveOptions(reqOpts)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	traceMode := ""
	if reqOpts != nil {
		traceMode = reqOpts.Trace
	}
	var tr *egs.Trace
	switch traceMode {
	case "":
	case "inline", "store":
		tr = egs.NewTrace()
		opts.Trace = tr
	default:
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown trace mode %q (want inline or store)", traceMode))
		return
	}
	if timeoutMS == 0 {
		if q := r.URL.Query().Get("timeout_ms"); q != "" {
			timeoutMS, err = strconv.ParseInt(q, 10, 64)
			if err != nil || timeoutMS < 0 {
				s.writeError(w, http.StatusBadRequest, "invalid timeout_ms query parameter")
				return
			}
		}
	}
	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = min(time.Duration(timeoutMS)*time.Millisecond, s.cfg.MaxTimeout)
	}

	key := cacheKey(t, opts)
	hash := key[:64] // the canonical task digest prefix of the key
	// Traced requests bypass the cache in both directions: a cached
	// answer has no trace to return, and a response carrying a trace
	// must not be replayed to untraced clients.
	if v, ok := s.cache.Get(key); ok && tr == nil {
		s.mCacheHits.Inc()
		resp := *v.(*SynthesisResponse) // shallow copy; cached entry stays immutable
		resp.Cached = true
		resp.ElapsedMS = msSince(start)
		s.log.Info("synthesis served from cache", "task", t.Name(), "hash", hash)
		s.writeJSON(w, http.StatusOK, &resp)
		return
	}
	s.mCacheMisses.Inc()

	if tr != nil {
		// Traced requests also bypass singleflight: each trace must
		// describe its own engine run, so coalescing would be wrong.
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		res, dur, status, msg := s.runSynthesis(ctx, s.adoptSnapshot(t), opts)
		if msg != "" {
			if status == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			}
			if status == http.StatusInternalServerError {
				s.log.Error("synthesis failed", "task", t.Name(), "hash", hash, "err", msg)
			}
			s.writeError(w, status, msg)
			return
		}
		resp := buildResponse(t, res, hash)
		s.log.Info("synthesis complete",
			"task", t.Name(), "hash", hash, "status", resp.Status,
			"synth_ms", float64(dur.Microseconds())/1000,
			"rules", respRules(res))
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			s.log.Error("trace rendering failed", "task", t.Name(), "err", err)
		} else if traceMode == "inline" {
			resp.Trace = json.RawMessage(buf.Bytes())
		} else {
			resp.TraceID = s.traces.put(buf.Bytes())
		}
		resp.ElapsedMS = msSince(start)
		s.writeJSON(w, http.StatusOK, resp)
		return
	}

	// Singleflight: concurrent misses on one key share a single
	// synthesis. Every caller's interest lives exactly as long as its
	// request context — when the request ends (response written or
	// client hung up), the caller leaves, and the last one out cancels
	// the engine. A follower abandoning early therefore never poisons
	// the flight for the rest.
	f, leader, fctx := s.flights.join(key, timeout)
	//lint:ignore egslint/ctxflow the AfterFunc stop is deliberately dropped: leave must fire exactly when this request's context ends, and stopping it early would leak the caller's waiter refcount
	context.AfterFunc(r.Context(), f.leave)
	if !leader {
		s.mFlightShared.Inc()
		wait, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		select {
		case <-f.done:
		case <-wait.Done():
			s.writeError(w, http.StatusGatewayTimeout, "synthesis did not finish within the request deadline")
			return
		}
		s.log.Info("synthesis shared from flight", "task", t.Name(), "hash", hash)
		s.writeFlightOutcome(w, start, f.out, true)
		return
	}
	s.mFlightLeaders.Inc()

	res, dur, status, msg := s.runSynthesis(fctx, s.adoptSnapshot(t), opts)
	if msg != "" {
		if status == http.StatusInternalServerError {
			s.log.Error("synthesis failed", "task", t.Name(), "hash", hash, "err", msg)
		}
		s.flights.finish(key, f, flightOutcome{status: status, msg: msg})
		s.writeFlightOutcome(w, start, f.out, false)
		return
	}

	resp := buildResponse(t, res, hash)
	// Cache the immutable part. Both verdicts are cacheable: sat
	// programs and unsat proofs are deterministic for (task, options).
	s.cache.Put(key, resp)
	s.mCacheSize.Set(int64(s.cache.Len()))
	s.log.Info("synthesis complete",
		"task", t.Name(), "hash", hash, "status", resp.Status,
		"synth_ms", float64(dur.Microseconds())/1000,
		"rules", respRules(res))
	s.flights.finish(key, f, flightOutcome{resp: resp})
	s.writeFlightOutcome(w, start, f.out, false)
}

// runSynthesis admits one engine run onto the queue and awaits it
// under ctx. On failure it returns the HTTP status and message to
// relay (msg == "" means success).
func (s *Server) runSynthesis(ctx context.Context, t *egs.Task, opts egs.Options) (res egs.Result, dur time.Duration, status int, msg string) {
	j := &job{ctx: ctx, task: t, opts: opts, done: make(chan jobResult, 1)}
	if err := s.enqueue(j); err != nil {
		if errors.Is(err, errQueueFull) {
			return res, 0, http.StatusTooManyRequests, err.Error()
		}
		return res, 0, http.StatusServiceUnavailable, err.Error()
	}
	var jr jobResult
	select {
	case jr = <-j.done:
	case <-ctx.Done():
		// The worker may still be running; it observes the same ctx
		// and will stop at its next cancellation check.
		return res, 0, http.StatusGatewayTimeout, "synthesis did not finish within the request deadline"
	}
	switch {
	case jr.err == nil:
		return jr.res, jr.dur, 0, ""
	case errors.Is(jr.err, egs.ErrBudgetExceeded):
		return res, 0, http.StatusUnprocessableEntity,
			"enumeration budget exceeded before the search completed (raise max_contexts or the server budget)"
	case errors.Is(jr.err, context.DeadlineExceeded), errors.Is(jr.err, context.Canceled):
		return res, 0, http.StatusGatewayTimeout, "synthesis did not finish within the request deadline"
	default:
		return res, 0, http.StatusInternalServerError, "synthesis failed: " + jr.err.Error()
	}
}

// writeFlightOutcome renders a singleflight result for one caller:
// each caller gets its own shallow copy (ElapsedMS and Coalesced are
// per-request), errors relay the leader's status with a fresh
// Retry-After where applicable.
func (s *Server) writeFlightOutcome(w http.ResponseWriter, start time.Time, out flightOutcome, coalesced bool) {
	if out.resp == nil {
		if out.status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		}
		s.writeError(w, out.status, out.msg)
		return
	}
	resp := *out.resp
	resp.Coalesced = coalesced
	resp.ElapsedMS = msSince(start)
	s.writeJSON(w, http.StatusOK, &resp)
}

// buildResponse renders an engine result for the wire.
func buildResponse(t *egs.Task, res egs.Result, hash string) *SynthesisResponse {
	resp := &SynthesisResponse{
		TaskHash:  hash,
		Uncovered: res.Uncovered,
		Stats: &Stats{
			ContextsExplored:    res.Stats.ContextsExplored,
			CandidatesEvaluated: res.Stats.CandidatesEvaluated,
			CandidatesCached:    res.Stats.CandidatesCached,
			RulesLearned:        res.Stats.RulesLearned,
		},
	}
	if res.Unsat {
		resp.Status = "unsat"
		resp.UnsatReason = res.UnsatReason
		return resp
	}
	resp.Status = "sat"
	resp.Datalog = res.Query.Datalog()
	if sql, err := res.Query.SQL(); err == nil {
		resp.SQL = sql
	}
	return resp
}

func respRules(res egs.Result) int {
	if res.Query == nil {
		return 0
	}
	return res.Query.NumRules()
}

func msSince(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	s.writeJSON(w, code, &SynthesisResponse{Status: "error", Error: msg})
}
