// Singleflight request coalescing for the result-cache miss path: all
// concurrent /synthesize requests that share a cache key block on one
// synthesis and share its response, so a stampede on one viral task
// costs one solve instead of N. Unlike the x/sync singleflight (which
// the stdlib-only rule keeps out anyway), a flight here is not tied to
// its leader's lifetime: the engine runs under a detached, refcounted
// context, so one caller hanging up — the leader included — never
// poisons the answer the remaining callers are waiting for. Only when
// every caller has gone does the flight cancel.

package server

import (
	"context"
	"sync"
	"time"
)

// flightOutcome is the shared terminal state of one coalesced
// synthesis: either an immutable response, or an HTTP error to relay.
type flightOutcome struct {
	resp   *SynthesisResponse // non-nil on success; shared, never mutated
	status int                // HTTP status when resp is nil
	msg    string
}

// flight is one in-progress coalesced synthesis.
type flight struct {
	done chan struct{} // closed when out is valid
	out  flightOutcome

	mu      sync.Mutex
	waiters int                // callers still interested in the result
	cancel  context.CancelFunc // stops the engine when waiters hits 0
}

// join registers one more interested caller.
func (f *flight) join() {
	f.mu.Lock()
	f.waiters++
	f.mu.Unlock()
}

// leave deregisters a caller; the last one out cancels the flight.
func (f *flight) leave() {
	f.mu.Lock()
	f.waiters--
	last := f.waiters == 0
	f.mu.Unlock()
	if last {
		f.cancel()
	}
}

// flightGroup deduplicates in-progress syntheses by cache key.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// join returns the flight for key, creating it when none is in
// progress. leader reports whether the caller must run the synthesis
// (and eventually call finish). The caller is registered as a waiter
// either way and must arrange for leave exactly once.
func (g *flightGroup) join(key string, timeout time.Duration) (f *flight, leader bool, ctx context.Context) {
	g.mu.Lock()
	if f = g.m[key]; f != nil {
		g.mu.Unlock()
		f.join()
		return f, false, nil
	}
	// The flight's context is detached from any one request: its
	// lifetime is "some caller still wants the answer", bounded by the
	// leader's resolved timeout.
	//lint:ignore egslint/ctxflow the detached root is the point of singleflight: the flight outlives its leader and is cancelled by the last waiter leaving (or this timeout), never by any one request
	fctx, cancel := context.WithTimeout(context.Background(), timeout)
	f = &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.m[key] = f
	g.mu.Unlock()
	return f, true, fctx
}

// finish publishes the outcome and removes the flight from the group,
// so later requests with the same key start fresh (typically hitting
// the result cache the leader just filled).
func (g *flightGroup) finish(key string, f *flight, out flightOutcome) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	f.out = out
	close(f.done)
	f.cancel() // release the timeout's timer; the engine is done
}
