// Wire types for the synthesis service: the JSON request/response
// schema of POST /synthesize, plus translation into the egs public
// API. Requests may alternatively carry a task in the declarative
// .task surface syntax (Content-Type: text/plain); both forms funnel
// into the same *egs.Task.

package server

import (
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"strings"

	"github.com/egs-synthesis/egs"
)

// RelDecl declares one relation of a JSON task.
type RelDecl struct {
	Name  string `json:"name"`
	Arity int    `json:"arity"`
}

// Atom is one ground tuple: a fact or a labelled example.
type Atom struct {
	Rel  string   `json:"rel"`
	Args []string `json:"args"`
}

// RequestOptions selects synthesizer options per request. Absent
// fields take the server's defaults; MaxContexts and Workers are
// clamped to the server's configured ceilings.
type RequestOptions struct {
	// Priority is "p2" (explanatory power per literal, the default)
	// or "p1" (syntactically smallest solution).
	Priority string `json:"priority,omitempty"`
	// QuickUnsat enables the Lemma 4.2 unsat fast path.
	QuickUnsat bool `json:"quick_unsat,omitempty"`
	// MaxContexts caps enumeration contexts per output cell.
	MaxContexts int `json:"max_contexts,omitempty"`
	// BestEffort tolerates noise by skipping unexplainable positives.
	BestEffort bool `json:"best_effort,omitempty"`
	// Workers enables wave-parallel per-tuple explanation.
	Workers int `json:"workers,omitempty"`
	// AssessParallelism enables the deterministic candidate-assessment
	// worker pool; results are bit-identical to sequential search.
	AssessParallelism int `json:"assess_parallelism,omitempty"`
	// Trace requests a structured search trace: "inline" returns the
	// Chrome trace-event JSON in the response's trace field, "store"
	// retains it server-side and returns a trace_id resolvable at
	// GET /debug/traces/{id} (capped FIFO store — fetch promptly).
	// Traced requests bypass the result cache in both directions, so
	// the trace always describes a real synthesis run.
	Trace string `json:"trace,omitempty"`
}

// SynthesisRequest is the JSON body of POST /synthesize.
type SynthesisRequest struct {
	Name          string          `json:"name,omitempty"`
	Inputs        []RelDecl       `json:"inputs"`
	Outputs       []RelDecl       `json:"outputs"`
	Facts         []Atom          `json:"facts"`
	Positive      []Atom          `json:"positive"`
	Negative      []Atom          `json:"negative,omitempty"`
	ClosedWorld   bool            `json:"closed_world,omitempty"`
	Negate        []string        `json:"negate,omitempty"`
	Neq           bool            `json:"neq,omitempty"`
	TypedNegation bool            `json:"typed_negation,omitempty"`
	Options       *RequestOptions `json:"options,omitempty"`
	// TimeoutMS bounds this request's synthesis time; 0 selects the
	// server default, and values above the server maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Stats mirrors egs.Stats on the wire.
type Stats struct {
	ContextsExplored    int `json:"contexts_explored"`
	CandidatesEvaluated int `json:"candidates_evaluated"`
	// CandidatesCached counts assessments served by the synthesizer's
	// canonical-rule memo instead of re-evaluation.
	CandidatesCached int `json:"candidates_cached"`
	RulesLearned     int `json:"rules_learned"`
}

// SynthesisResponse is the JSON body returned by POST /synthesize.
type SynthesisResponse struct {
	// Status is "sat", "unsat", or "error".
	Status string `json:"status"`
	// Datalog is the synthesized query, one rule per line (sat only).
	Datalog string `json:"datalog,omitempty"`
	// SQL is the same query as a SELECT ... UNION statement (sat only).
	SQL string `json:"sql,omitempty"`
	// UnsatReason explains an unsat verdict.
	UnsatReason string `json:"unsat_reason,omitempty"`
	// Uncovered lists skipped positives in best-effort mode.
	Uncovered []string `json:"uncovered,omitempty"`
	Stats     *Stats   `json:"stats,omitempty"`
	// TaskHash is the canonical task digest — the cache key modulo
	// options — echoed for client-side correlation.
	TaskHash string `json:"task_hash,omitempty"`
	// TraceID names a server-retained trace (options.trace: "store"),
	// resolvable at GET /debug/traces/{id} until evicted.
	TraceID string `json:"trace_id,omitempty"`
	// Trace carries the Chrome trace-event JSON of this run inline
	// (options.trace: "inline").
	Trace json.RawMessage `json:"trace,omitempty"`
	// Cached reports that the response was served from the result
	// cache without running the synthesizer.
	Cached bool `json:"cached"`
	// Coalesced reports that the response was shared from a concurrent
	// identical request's synthesis (singleflight) rather than a
	// dedicated engine run.
	Coalesced bool `json:"coalesced,omitempty"`
	// ElapsedMS is the server-side handling time for this request.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Error carries a human-readable message when Status is "error".
	Error string `json:"error,omitempty"`
}

// parseRequest decodes an HTTP body into a prepared task plus
// per-request knobs. JSON bodies use SynthesisRequest; any other
// content type is parsed as the .task surface syntax.
func parseRequest(contentType string, body io.Reader) (*egs.Task, *RequestOptions, int64, error) {
	mt, _, err := mime.ParseMediaType(contentType)
	if err != nil && contentType != "" {
		mt = contentType
	}
	if mt == "application/json" {
		var req SynthesisRequest
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nil, nil, 0, fmt.Errorf("invalid JSON request: %w", err)
		}
		t, err := buildTask(&req)
		if err != nil {
			return nil, nil, 0, err
		}
		return t, req.Options, req.TimeoutMS, nil
	}
	t, err := egs.ParseTask(body)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("invalid task: %w", err)
	}
	return t, nil, 0, nil
}

// buildTask lowers a JSON request to a prepared task via the public
// builder, so JSON tasks get exactly the library's validation.
func buildTask(req *SynthesisRequest) (*egs.Task, error) {
	b := egs.NewBuilder()
	if req.Name != "" {
		b.Name(req.Name)
	}
	for _, d := range req.Inputs {
		b.Input(d.Name, d.Arity)
	}
	for _, d := range req.Outputs {
		b.Output(d.Name, d.Arity)
	}
	for _, a := range req.Facts {
		b.Fact(a.Rel, a.Args...)
	}
	for _, a := range req.Positive {
		b.Positive(a.Rel, a.Args...)
	}
	for _, a := range req.Negative {
		b.Negative(a.Rel, a.Args...)
	}
	b.ClosedWorld(req.ClosedWorld)
	if len(req.Negate) > 0 {
		b.Negate(req.Negate...)
	}
	if req.Neq {
		b.AddNeq()
	}
	if req.TypedNegation {
		b.TypedNegation()
	}
	return b.Task()
}

// resolveOptions merges per-request options over the server defaults,
// clamping resource knobs to the configured ceilings.
func (s *Server) resolveOptions(ro *RequestOptions) (egs.Options, error) {
	opts := egs.Options{MaxContexts: s.cfg.MaxContexts}
	if ro == nil {
		return opts, nil
	}
	switch ro.Priority {
	case "", "p2":
		opts.Priority = egs.PriorityScore
	case "p1":
		opts.Priority = egs.PrioritySize
	default:
		return opts, fmt.Errorf("unknown priority %q (want p1 or p2)", ro.Priority)
	}
	opts.QuickUnsat = ro.QuickUnsat
	opts.BestEffort = ro.BestEffort
	if ro.MaxContexts > 0 && (s.cfg.MaxContexts == 0 || ro.MaxContexts < s.cfg.MaxContexts) {
		opts.MaxContexts = ro.MaxContexts
	}
	if ro.Workers > 1 {
		opts.Workers = min(ro.Workers, maxRequestWorkers)
	}
	if ro.AssessParallelism > 1 {
		opts.AssessParallelism = min(ro.AssessParallelism, maxRequestWorkers)
	}
	return opts, nil
}

// maxRequestWorkers bounds per-request intra-task parallelism: the
// serving pool is the primary source of concurrency, so a single
// request may not fan out arbitrarily.
const maxRequestWorkers = 8

// cacheKey derives the result-cache key: the canonical task hash
// extended with the options that influence the result. Timeouts are
// excluded — timed-out syntheses are never cached.
func cacheKey(t *egs.Task, opts egs.Options) string {
	var b strings.Builder
	b.WriteString(t.CanonicalHash())
	// AssessParallelism is deliberately absent: it cannot change the
	// result (the assessment pool is deterministic), so requests that
	// differ only in it share a cache entry.
	fmt.Fprintf(&b, "|pri=%d;qu=%t;mc=%d;be=%t;w=%d",
		opts.Priority, opts.QuickUnsat, opts.MaxContexts, opts.BestEffort, opts.Workers)
	return b.String()
}
