// Package modes implements mode declarations and candidate-rule
// generation in the style of ILASP (Section 6.2 of the EGS paper).
//
// A mode declaration bounds the hypothesis space of the
// syntax-guided baselines: for each input relation, the maximum
// number of times it may occur in a rule body, and the maximum number
// of distinct variables per rule. The generator enumerates every safe
// conjunctive query within those bounds, modulo variable renaming and
// body-literal order.
//
// The paper evaluates ILASP and ProSynth with two rule sets per task:
// a task-specific set recovered from the intended program's minimal
// modes, and a task-agnostic set (every relation up to 3 occurrences,
// up to 10 distinct variables). The task-agnostic spaces are often
// astronomically large — the paper's rule enumerator timed out on 31
// of 79 benchmarks — so Generate accepts a context and a hard cap and
// reports truncation, which the benchmark harness surfaces as a
// timeout exactly like the paper does.
package modes

import (
	"context"
	"sort"

	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/task"
)

// AgnosticModes returns the paper's task-agnostic mode declaration
// for a task: every input relation may occur up to 3 times and rules
// may use up to 10 distinct variables (Section 6.2).
func AgnosticModes(t *task.Task) *task.ModeSpec {
	m := &task.ModeSpec{MaxVars: 10, Occurrences: make(map[string]int)}
	for _, rel := range t.Schema.Relations(relation.Input) {
		m.Occurrences[t.Schema.Name(rel)] = 3
	}
	return m
}

// Result is the outcome of candidate-rule generation.
type Result struct {
	Rules []query.Rule
	// Truncated reports that the cap or deadline was hit before the
	// space was exhausted; the rule set is incomplete.
	Truncated bool
}

// Generate enumerates the candidate rules for every output relation
// of the task under the given mode declaration. Rules are
// deduplicated up to variable renaming and body order. Generation
// stops early — with Truncated set — when cap rules have been
// produced (cap <= 0 means unlimited) or ctx is done.
func Generate(ctx context.Context, t *task.Task, m *task.ModeSpec, cap int) Result {
	g := &generator{
		ctx:    ctx,
		schema: t.Schema,
		m:      m,
		cap:    cap,
		seen:   make(map[string]bool),
	}
	// Deterministic relation order.
	for _, rel := range t.Schema.Relations(relation.Input) {
		if m.Occurrences[t.Schema.Name(rel)] > 0 {
			g.rels = append(g.rels, rel)
		}
	}
	for _, out := range t.OutputRelations() {
		if !g.generateFor(out) {
			return Result{Rules: g.rules, Truncated: true}
		}
	}
	return Result{Rules: g.rules}
}

type generator struct {
	ctx    context.Context
	schema *relation.Schema
	m      *task.ModeSpec
	rels   []relation.RelID
	cap    int
	rules  []query.Rule
	seen   map[string]bool
	steps  int
}

// generateFor enumerates rules with head out(v0, ..., v_{k-1}).
// It returns false if generation was truncated.
func (g *generator) generateFor(out relation.RelID) bool {
	k := g.schema.Arity(out)
	if k > g.m.MaxVars {
		return true // no rule can bind that many head variables
	}
	head := query.Literal{Rel: out, Args: make([]query.Term, k)}
	for i := 0; i < k; i++ {
		head.Args[i] = query.V(query.Var(i))
	}
	occ := make(map[relation.RelID]int)
	maxBody := 0
	for _, r := range g.rels {
		maxBody += g.m.Occurrences[g.schema.Name(r)]
	}
	var body []query.Literal
	var rec func(minRelIdx, usedVars int) bool
	rec = func(minRelIdx, usedVars int) bool {
		g.steps++
		if g.steps%1024 == 0 {
			select {
			case <-g.ctx.Done():
				return false
			default:
			}
		}
		if len(body) > 0 {
			if !g.emit(head, body) {
				return false
			}
		}
		if len(body) == maxBody {
			return true
		}
		// Append one more literal; relations in nondecreasing order to
		// curb permutation duplicates (canonical dedup removes the rest).
		for ri := minRelIdx; ri < len(g.rels); ri++ {
			rel := g.rels[ri]
			if occ[rel] >= g.m.Occurrences[g.schema.Name(rel)] {
				continue
			}
			occ[rel]++
			arity := g.schema.Arity(rel)
			args := make([]query.Term, arity)
			var argRec func(ai, used int) bool
			argRec = func(ai, used int) bool {
				if ai == arity {
					body = append(body, query.Literal{Rel: rel, Args: append([]query.Term(nil), args...)})
					ok := rec(ri, used)
					body = body[:len(body)-1]
					return ok
				}
				// A variable is either an existing one (0..used-1) or
				// the next fresh index, bounded by MaxVars.
				limit := used
				if used < g.m.MaxVars {
					limit = used + 1
				}
				for v := 0; v < limit; v++ {
					args[ai] = query.V(query.Var(v))
					nu := used
					if v == used {
						nu = used + 1
					}
					if !argRec(ai+1, nu) {
						return false
					}
				}
				return true
			}
			ok := argRec(0, usedVars)
			occ[rel]--
			if !ok {
				return false
			}
		}
		return true
	}
	return rec(0, k)
}

// emit records a candidate rule if it is safe and new. It returns
// false when the cap was reached.
func (g *generator) emit(head query.Literal, body []query.Literal) bool {
	r := query.Rule{Head: head, Body: append([]query.Literal(nil), body...)}
	if r.Safe() != nil {
		return true
	}
	key := r.CanonicalKey()
	if g.seen[key] {
		return true
	}
	g.seen[key] = true
	g.rules = append(g.rules, r.Clone())
	return g.cap <= 0 || len(g.rules) < g.cap
}

// SortRules orders rules by size then canonical key, giving the
// baselines a deterministic search order.
func SortRules(rules []query.Rule) {
	sort.SliceStable(rules, func(i, j int) bool {
		if rules[i].Size() != rules[j].Size() {
			return rules[i].Size() < rules[j].Size()
		}
		return rules[i].CanonicalKey() < rules[j].CanonicalKey()
	})
}
