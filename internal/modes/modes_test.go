package modes

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/egs-synthesis/egs/internal/task"
)

const miniSrc = `
task mini
closed-world true
input edge(2)
output out(1)
edge(a, b).
+out(a).
`

func miniTask(t *testing.T) *task.Task {
	t.Helper()
	tk, err := task.Parse(strings.NewReader(miniSrc))
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

func TestGenerateSmallSpace(t *testing.T) {
	tk := miniTask(t)
	m := &task.ModeSpec{MaxVars: 2, Occurrences: map[string]int{"edge": 1}}
	res := Generate(context.Background(), tk, m, 0)
	if res.Truncated {
		t.Fatal("tiny space truncated")
	}
	// Head out(x); bodies with one edge literal over <=2 vars:
	// edge(x,x), edge(x,y), edge(y,x), edge(y,y)... edge(y,y) is
	// unsafe (x missing). So 3 rules.
	if len(res.Rules) != 3 {
		var got []string
		for _, r := range res.Rules {
			got = append(got, r.String(tk.Schema, tk.Domain))
		}
		t.Fatalf("generated %d rules, want 3:\n%s", len(res.Rules), strings.Join(got, "\n"))
	}
	for _, r := range res.Rules {
		if err := r.Validate(tk.Schema); err != nil {
			t.Errorf("invalid rule %s: %v", r.String(tk.Schema, tk.Domain), err)
		}
	}
}

func TestGenerateTwoOccurrences(t *testing.T) {
	tk := miniTask(t)
	m := &task.ModeSpec{MaxVars: 3, Occurrences: map[string]int{"edge": 2}}
	res := Generate(context.Background(), tk, m, 0)
	if res.Truncated {
		t.Fatal("space truncated")
	}
	// Must include the two-hop pattern out(x) :- edge(x,y), edge(y,z).
	found := false
	for _, r := range res.Rules {
		if r.Size() == 2 && strings.Contains(r.String(tk.Schema, tk.Domain), "edge(x, y), edge(y, z)") {
			found = true
		}
	}
	if !found {
		t.Error("two-hop rule missing from generated space")
	}
	// All rules distinct up to renaming.
	seen := map[string]bool{}
	for _, r := range res.Rules {
		k := r.CanonicalKey()
		if seen[k] {
			t.Errorf("duplicate rule %s", r.String(tk.Schema, tk.Domain))
		}
		seen[k] = true
	}
}

func TestGenerateRespectsCap(t *testing.T) {
	tk := miniTask(t)
	m := &task.ModeSpec{MaxVars: 5, Occurrences: map[string]int{"edge": 3}}
	res := Generate(context.Background(), tk, m, 10)
	if !res.Truncated {
		t.Error("cap not reported as truncation")
	}
	if len(res.Rules) != 10 {
		t.Errorf("got %d rules, want 10", len(res.Rules))
	}
}

func TestGenerateRespectsDeadline(t *testing.T) {
	tk := miniTask(t)
	m := AgnosticModes(tk)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res := Generate(ctx, tk, m, 0)
	// edge up to 3 times with 10 vars: the space is enormous; the
	// deadline must fire and truncation be reported.
	if !res.Truncated {
		t.Skipf("agnostic space unexpectedly exhausted with %d rules", len(res.Rules))
	}
}

func TestAgnosticModes(t *testing.T) {
	tk := miniTask(t)
	m := AgnosticModes(tk)
	if m.MaxVars != 10 || m.Occurrences["edge"] != 3 {
		t.Errorf("agnostic modes = %+v", m)
	}
}

func TestSortRulesDeterministic(t *testing.T) {
	tk := miniTask(t)
	m := &task.ModeSpec{MaxVars: 3, Occurrences: map[string]int{"edge": 2}}
	a := Generate(context.Background(), tk, m, 0).Rules
	b := Generate(context.Background(), tk, m, 0).Rules
	SortRules(a)
	SortRules(b)
	if len(a) != len(b) {
		t.Fatal("nondeterministic generation size")
	}
	for i := range a {
		if a[i].CanonicalKey() != b[i].CanonicalKey() {
			t.Fatal("nondeterministic order")
		}
	}
	for i := 0; i+1 < len(a); i++ {
		if a[i].Size() > a[i+1].Size() {
			t.Fatal("not sorted by size")
		}
	}
}

func TestGenerateSafetyAndBounds(t *testing.T) {
	tk := miniTask(t)
	m := &task.ModeSpec{MaxVars: 2, Occurrences: map[string]int{"edge": 2}}
	res := Generate(context.Background(), tk, m, 0)
	for _, r := range res.Rules {
		if r.NumVars() > 2 {
			t.Errorf("rule exceeds maxv: %s", r.String(tk.Schema, tk.Domain))
		}
		if r.Size() > 2 {
			t.Errorf("rule exceeds occurrence bound: %s", r.String(tk.Schema, tk.Domain))
		}
		if err := r.Safe(); err != nil {
			t.Errorf("unsafe rule generated: %s", r.String(tk.Schema, tk.Domain))
		}
	}
}

func TestGenerateMultipleOutputs(t *testing.T) {
	src := `
task multi
closed-world true
input p(1)
output a(1)
output b(1)
p(x1).
+a(x1).
+b(x1).
`
	tk, err := task.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	m := &task.ModeSpec{MaxVars: 1, Occurrences: map[string]int{"p": 1}}
	res := Generate(context.Background(), tk, m, 0)
	heads := map[string]bool{}
	for _, r := range res.Rules {
		heads[tk.Schema.Name(r.Head.Rel)] = true
	}
	if !heads["a"] || !heads["b"] {
		t.Errorf("heads covered: %v", heads)
	}
}
