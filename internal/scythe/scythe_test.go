package scythe

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/synth"
	"github.com/egs-synthesis/egs/internal/task"
)

func load(t *testing.T, src string) *task.Task {
	t.Helper()
	tk, err := task.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

const joinSrc = `
task join
closed-world true
input r(2)
input mark(1)
output out(1)
r(a, b).
r(b, c).
r(c, a).
mark(b).
+out(a).
`

func TestSynthesizeSelectionJoin(t *testing.T) {
	tk := load(t, joinSrc)
	s := &Synthesizer{}
	res, err := s.Synthesize(context.Background(), tk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != synth.Sat {
		t.Fatalf("status = %v (%s)", res.Status, res.Detail)
	}
	if ok, why := tk.Example().Consistent(res.Query); !ok {
		t.Fatalf("inconsistent: %s", why)
	}
}

func TestUnionByDivideAndConquer(t *testing.T) {
	src := `
task u
closed-world true
input p(1)
input q(1)
output out(1)
p(a).
q(b).
+out(a).
+out(b).
`
	tk := load(t, src)
	res, err := (&Synthesizer{}).Synthesize(context.Background(), tk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != synth.Sat || len(res.Query.Rules) != 2 {
		t.Fatalf("status=%v rules=%d", res.Status, len(res.Query.Rules))
	}
}

func TestJoinLimitExhausts(t *testing.T) {
	// The concept needs a 2-way join; MaxJoins 1 cannot express it.
	src := `
task deep
closed-world true
input e(2)
output out(2)
e(a, b).
e(b, c).
+out(a, c).
`
	tk := load(t, src)
	res, err := (&Synthesizer{MaxJoins: 1}).Synthesize(context.Background(), tk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != synth.Exhausted {
		t.Fatalf("status = %v, want exhausted", res.Status)
	}
	// With the default limit it solves.
	tk2 := load(t, src)
	res2, err := (&Synthesizer{}).Synthesize(context.Background(), tk2)
	if err != nil || res2.Status != synth.Sat {
		t.Fatalf("default limit: status=%v err=%v", res2.Status, err)
	}
}

func TestAbstractPruning(t *testing.T) {
	// A target constant that appears in no input tuple makes every
	// skeleton abstractly infeasible, so the search exhausts quickly
	// even with a high join limit.
	src := `
task ghost
closed-world true
input p(1)
output out(1)
p(a).
+out(ghostly).
`
	tk := load(t, src)
	start := time.Now()
	res, err := (&Synthesizer{}).Synthesize(context.Background(), tk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != synth.Exhausted {
		t.Fatalf("status = %v", res.Status)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("abstract pruning ineffective")
	}
}

func TestAbstractFeasibleDirect(t *testing.T) {
	tk := load(t, joinSrc)
	e := &engine{ctx: context.Background(), t: tk, ex: tk.Example(), maxJoins: 2, seen: map[string]bool{}}
	r, _ := tk.Schema.Lookup("r")
	mark, _ := tk.Schema.Lookup("mark")
	a, _ := tk.Domain.Lookup("a")
	target := relation.NewTuple(tk.Pos[0].Rel, a)
	if !e.abstractFeasible([]relation.RelID{r}, target) {
		t.Error("r skeleton should be feasible for out(a)")
	}
	if !e.abstractFeasible([]relation.RelID{r, mark}, target) {
		t.Error("r+mark skeleton should be feasible")
	}
	ghost := relation.NewTuple(tk.Pos[0].Rel, relation.Const(99))
	if e.abstractFeasible([]relation.RelID{r}, ghost) {
		t.Error("unknown constant should be infeasible")
	}
}

func TestDeadline(t *testing.T) {
	tk := load(t, joinSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (&Synthesizer{}).Synthesize(ctx, tk); err == nil {
		t.Skip("solved before first deadline check")
	}
}

func TestName(t *testing.T) {
	if (&Synthesizer{}).Name() != "scythe" {
		t.Error("name wrong")
	}
}
