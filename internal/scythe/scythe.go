// Package scythe re-implements the enumerative baseline of the EGS
// evaluation: Scythe-style two-phase query synthesis (Wang, Cheung,
// Bodík, PLDI 2017), restricted — as in the paper's comparison — to
// the aggregation-free fragment (select / join / project / union).
//
// Scythe first enumerates *abstract queries* that over-approximate
// the desired output: a join skeleton (which relations are joined,
// which columns are projected) with all filter predicates abstracted
// away. Skeletons whose over-approximation cannot produce the desired
// tuples are pruned wholesale. Each surviving skeleton is then
// *concretized* by searching the space of equality predicates —
// here, identifications of join variables — until a query consistent
// with the examples is found.
//
// The search is syntax-guided: its cost grows with the number of
// relations and the join depth, independently of structure in the
// examples, which is exactly the behaviour the paper measures
// against. Unions are handled by the divide-and-conquer loop the
// paper describes for eusolver-style tools: synthesize one
// conjunctive query per still-unexplained positive tuple.
package scythe

import (
	"context"
	"fmt"

	"github.com/egs-synthesis/egs/internal/eval"
	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/synth"
	"github.com/egs-synthesis/egs/internal/task"
)

// Synthesizer is the Scythe-style baseline.
type Synthesizer struct {
	// MaxJoins bounds the number of joined relations per rule;
	// 0 selects the default (8, large enough that realizable
	// benchmarks are bounded by the timeout rather than the limit,
	// as with the real tool).
	MaxJoins int
}

// Name implements synth.Synthesizer.
func (s *Synthesizer) Name() string { return "scythe" }

// Synthesize implements synth.Synthesizer.
func (s *Synthesizer) Synthesize(ctx context.Context, t *task.Task) (synth.Result, error) {
	if err := t.Prepare(); err != nil {
		return synth.Result{}, err
	}
	maxJoins := s.MaxJoins
	if maxJoins == 0 {
		maxJoins = 8
	}
	e := &engine{
		ctx:      ctx,
		t:        t,
		ex:       t.Example(),
		maxJoins: maxJoins,
		seen:     make(map[string]bool),
	}
	unexplained := append([]relation.Tuple(nil), t.Pos...)
	var rules []query.Rule
	for len(unexplained) > 0 {
		target := unexplained[0]
		rule, ok, err := e.searchOne(target)
		if err != nil {
			return synth.Result{}, err
		}
		if !ok {
			return synth.Result{Status: synth.Exhausted,
				Detail: fmt.Sprintf("no consistent query with <= %d joins", maxJoins)}, nil
		}
		outs := eval.RuleOutputIDs(rule, e.ex.DB)
		var still []relation.Tuple
		for _, u := range unexplained {
			if !outs.Has(e.ex.DB.InternTuple(u)) {
				still = append(still, u)
			}
		}
		unexplained = still
		rules = append(rules, rule)
	}
	return synth.Result{Status: synth.Sat, Query: query.UCQ{Rules: rules}}, nil
}

type engine struct {
	ctx      context.Context
	t        *task.Task
	ex       *task.Example
	maxJoins int
	seen     map[string]bool // concretization dedup across the whole run
	steps    int
}

func (e *engine) tick() error {
	e.steps++
	if e.steps%512 == 0 {
		select {
		case <-e.ctx.Done():
			return e.ctx.Err()
		default:
		}
	}
	return nil
}

// searchOne looks for a conjunctive query consistent with the
// negatives that derives target, enumerating skeletons in increasing
// join count.
func (e *engine) searchOne(target relation.Tuple) (query.Rule, bool, error) {
	inputs := e.t.Schema.Relations(relation.Input)
	for size := 1; size <= e.maxJoins; size++ {
		rule, ok, err := e.skeletons(target, inputs, size)
		if err != nil {
			return query.Rule{}, false, err
		}
		if ok {
			return rule, true, nil
		}
	}
	return query.Rule{}, false, nil
}

// skeletons enumerates nondecreasing relation multisets of the given
// size and tries each one.
func (e *engine) skeletons(target relation.Tuple, inputs []relation.RelID, size int) (query.Rule, bool, error) {
	skeleton := make([]relation.RelID, size)
	var rec func(pos, minIdx int) (query.Rule, bool, error)
	rec = func(pos, minIdx int) (query.Rule, bool, error) {
		if err := e.tick(); err != nil {
			return query.Rule{}, false, err
		}
		if pos == size {
			if !e.abstractFeasible(skeleton, target) {
				return query.Rule{}, false, nil
			}
			return e.concretize(skeleton, target)
		}
		for i := minIdx; i < len(inputs); i++ {
			skeleton[pos] = inputs[i]
			if r, ok, err := rec(pos+1, i); ok || err != nil {
				return r, ok, err
			}
		}
		return query.Rule{}, false, nil
	}
	return rec(0, 0)
}

// abstractFeasible checks the abstract (predicate-free) query: every
// constant of the target tuple must occur somewhere in the extents of
// the skeleton's relations, and every relation must be nonempty.
// This is Scythe's phase-1 pruning adapted to the Datalog fragment:
// an abstract query over-approximates all of its concretizations, so
// an infeasible abstraction prunes the whole subtree.
func (e *engine) abstractFeasible(skeleton []relation.RelID, target relation.Tuple) bool {
	db := e.ex.DB
	for _, rel := range skeleton {
		if db.ExtentSize(rel) == 0 {
			return false
		}
	}
	for _, c := range target.Args {
		found := false
		for _, rel := range skeleton {
			for col := 0; col < db.Schema.Arity(rel) && !found; col++ {
				if len(db.AtColumn(rel, col, c)) > 0 {
					found = true
				}
			}
			if found {
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// concretize searches the equality-predicate space of one skeleton:
// assignments of variables to the skeleton's argument slots (in
// canonical fresh-index order), with the head projecting variables
// that appear in the body. The first consistent concretization that
// derives the target wins.
func (e *engine) concretize(skeleton []relation.RelID, target relation.Tuple) (query.Rule, bool, error) {
	db := e.ex.DB
	var slots []int // arity per body literal
	total := 0
	for _, rel := range skeleton {
		a := db.Schema.Arity(rel)
		slots = append(slots, a)
		total += a
	}
	assign := make([]int, total) // slot -> variable index
	k := len(target.Args)

	var tryHead func() (query.Rule, bool, error)
	tryHead = func() (query.Rule, bool, error) {
		// Choose head variables among the used variables; enumerate
		// slot choices per head column (projections).
		used := 0
		for _, v := range assign {
			if v+1 > used {
				used = v + 1
			}
		}
		headVars := make([]int, k)
		var rec func(i int) (query.Rule, bool, error)
		rec = func(i int) (query.Rule, bool, error) {
			if err := e.tick(); err != nil {
				return query.Rule{}, false, err
			}
			if i == k {
				rule := buildRule(skeleton, slots, assign, headVars, target.Rel)
				key := rule.CanonicalKey()
				if e.seen[key] {
					return query.Rule{}, false, nil
				}
				e.seen[key] = true
				if !eval.Derives(rule, db, target) {
					return query.Rule{}, false, nil
				}
				if !e.ex.RuleConsistentWithNegatives(rule) {
					return query.Rule{}, false, nil
				}
				return rule, true, nil
			}
			for v := 0; v < used; v++ {
				headVars[i] = v
				if r, ok, err := rec(i + 1); ok || err != nil {
					return r, ok, err
				}
			}
			return query.Rule{}, false, nil
		}
		return rec(0)
	}

	var recSlot func(i, used int) (query.Rule, bool, error)
	recSlot = func(i, used int) (query.Rule, bool, error) {
		if i == total {
			return tryHead()
		}
		limit := used
		if limit < total {
			limit = used + 1
		}
		for v := 0; v < limit; v++ {
			assign[i] = v
			nu := used
			if v == used {
				nu = used + 1
			}
			if r, ok, err := recSlot(i+1, nu); ok || err != nil {
				return r, ok, err
			}
		}
		return query.Rule{}, false, nil
	}
	return recSlot(0, 0)
}

// buildRule materializes a rule from a skeleton, a slot-to-variable
// assignment, and head variable choices.
func buildRule(skeleton []relation.RelID, slots, assign, headVars []int, headRel relation.RelID) query.Rule {
	r := query.Rule{
		Head: query.Literal{Rel: headRel, Args: make([]query.Term, len(headVars))},
	}
	for i, v := range headVars {
		r.Head.Args[i] = query.V(query.Var(v))
	}
	s := 0
	for bi, rel := range skeleton {
		lit := query.Literal{Rel: rel, Args: make([]query.Term, slots[bi])}
		for ai := 0; ai < slots[bi]; ai++ {
			lit.Args[ai] = query.V(query.Var(assign[s]))
			s++
		}
		r.Body = append(r.Body, lit)
	}
	return r
}
