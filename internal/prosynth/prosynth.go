// Package prosynth re-implements the hybrid baseline of the EGS
// evaluation: ProSynth-style provenance-guided synthesis
// (Raghothaman et al., POPL 2020) over a mode-bounded candidate-rule
// space.
//
// ProSynth runs a CEGIS loop between a SAT solver, which proposes a
// subset of candidate rules, and a Datalog solver, which evaluates
// the subset and returns provenance for the mistakes:
//
//   - "why" provenance for an undesirable derived tuple yields the
//     constraint that some rule used in its derivation be disabled —
//     for the paper's non-recursive fragment, each offending rule
//     derives the tuple on its own, so the constraint is simply that
//     the rule be off;
//   - "why-not" provenance for a missing desirable tuple yields the
//     constraint that at least one rule able to derive it be enabled.
//
// The loop starts, as ProSynth does, from the subset containing every
// candidate rule, and converges because each iteration's constraints
// eliminate the current subset. Like ILASP, the search space is
// finite: exhausting it yields Exhausted, not an unrealizability
// proof.
package prosynth

import (
	"context"
	"fmt"

	"github.com/egs-synthesis/egs/internal/eval"
	"github.com/egs-synthesis/egs/internal/ilasp"
	"github.com/egs-synthesis/egs/internal/modes"
	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/sat"
	"github.com/egs-synthesis/egs/internal/synth"
	"github.com/egs-synthesis/egs/internal/task"
)

// Synthesizer is the ProSynth-style baseline.
type Synthesizer struct {
	Source ilasp.ModeSource
	// RuleCap bounds candidate generation (0 = unlimited).
	RuleCap int
}

// Name implements synth.Synthesizer.
func (s *Synthesizer) Name() string {
	if s.Source == ilasp.TaskAgnostic {
		return "prosynth-F"
	}
	return "prosynth-L"
}

// Synthesize implements synth.Synthesizer.
func (s *Synthesizer) Synthesize(ctx context.Context, t *task.Task) (synth.Result, error) {
	if err := t.Prepare(); err != nil {
		return synth.Result{}, err
	}
	spec := ilasp.ModesFor(t, s.Source)
	gen := modes.Generate(ctx, t, spec, s.RuleCap)
	if gen.Truncated {
		if err := ctx.Err(); err != nil {
			return synth.Result{}, err
		}
		return synth.Result{}, fmt.Errorf("prosynth: candidate rule cap %d exceeded", s.RuleCap)
	}
	modes.SortRules(gen.Rules)
	detail := fmt.Sprintf("%d candidate rules", len(gen.Rules))

	rules, status, err := cegis(ctx, t, gen.Rules)
	if err != nil {
		return synth.Result{}, err
	}
	if status != synth.Sat {
		return synth.Result{Status: status, Detail: detail}, nil
	}
	return synth.Result{Status: synth.Sat, Query: query.UCQ{Rules: rules}, Detail: detail}, nil
}

// cegis runs the provenance-guided loop.
func cegis(ctx context.Context, t *task.Task, candidates []query.Rule) ([]query.Rule, synth.Status, error) {
	ex := t.Example()
	n := len(candidates)

	var solver sat.Solver
	lits := make([]sat.Lit, n)
	for i := range lits {
		lits[i] = sat.Lit(solver.NewVar())
	}

	// Rule evaluation memo: outputs of rule i, computed on demand.
	outsMemo := make([]map[string]relation.Tuple, n)
	outputsOf := func(i int) map[string]relation.Tuple {
		if outsMemo[i] == nil {
			outsMemo[i] = eval.RuleOutputs(candidates[i], ex.DB)
		}
		return outsMemo[i]
	}
	// Why-not provenance memo: for each positive tuple key, the
	// candidate rules able to derive it (computed lazily, since it
	// requires evaluating the entire space once).
	deriverMemo := make(map[string][]int)
	deriversOf := func(p relation.Tuple) []int {
		key := p.Key()
		if d, ok := deriverMemo[key]; ok {
			return d
		}
		var d []int
		for i := 0; i < n; i++ {
			if _, ok := outputsOf(i)[key]; ok {
				d = append(d, i)
			}
		}
		deriverMemo[key] = d
		return d
	}

	// Initial candidate subset: all rules on (ProSynth's seed).
	selected := make([]bool, n)
	for i := range selected {
		selected[i] = true
	}

	for {
		select {
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		default:
		}
		// Evaluate the current subset.
		derived := make(map[string]relation.Tuple)
		for i := 0; i < n; i++ {
			if !selected[i] {
				continue
			}
			for k, tu := range outputsOf(i) {
				derived[k] = tu
			}
		}
		consistent := true
		// Why provenance: disable every selected rule deriving a
		// negative tuple (sound for non-recursive unions).
		for i := 0; i < n; i++ {
			if !selected[i] {
				continue
			}
			for _, tu := range outputsOf(i) {
				if ex.IsNegative(tu) {
					solver.AddClause(lits[i].Neg())
					consistent = false
					break
				}
			}
		}
		// Why-not provenance: for each missing positive tuple,
		// require one of its derivers.
		for _, p := range t.Pos {
			if _, ok := derived[p.Key()]; ok {
				continue
			}
			consistent = false
			ds := deriversOf(p)
			clause := make([]sat.Lit, 0, len(ds))
			for _, i := range ds {
				clause = append(clause, lits[i])
			}
			solver.AddAtLeastOne(clause)
		}
		if consistent {
			// Also confirm positives are covered (they are, or the
			// loop would have added why-not constraints).
			var out []query.Rule
			for i := 0; i < n; i++ {
				if selected[i] && contributes(t.Pos, outputsOf(i)) {
					out = append(out, candidates[i])
				}
			}
			out = pruneRedundant(ex, t.Pos, out)
			return out, synth.Sat, nil
		}
		model, ok, err := solver.Solve(ctx)
		if err != nil {
			return nil, 0, err
		}
		if !ok {
			return nil, synth.Exhausted, nil
		}
		for i := 0; i < n; i++ {
			selected[i] = model.Lit(lits[i])
		}
	}
}

// contributes reports whether a rule derives at least one positive
// tuple; rules that do not are dropped from the final hypothesis.
func contributes(pos []relation.Tuple, outs map[string]relation.Tuple) bool {
	for _, p := range pos {
		if _, ok := outs[p.Key()]; ok {
			return true
		}
	}
	return false
}

// pruneRedundant greedily removes rules whose positive coverage is
// subsumed by the rest, mirroring ProSynth's final minimization pass.
func pruneRedundant(ex *task.Example, pos []relation.Tuple, rules []query.Rule) []query.Rule {
	kept := append([]query.Rule(nil), rules...)
	for i := len(kept) - 1; i >= 0; i-- {
		without := make([]query.Rule, 0, len(kept)-1)
		without = append(without, kept[:i]...)
		without = append(without, kept[i+1:]...)
		if len(without) == 0 {
			continue
		}
		outs := eval.UCQOutputs(query.UCQ{Rules: without}, ex.DB)
		all := true
		for _, p := range pos {
			if _, ok := outs[p.Key()]; !ok {
				all = false
				break
			}
		}
		if all {
			kept = without
		}
	}
	return kept
}
