// Package prosynth re-implements the hybrid baseline of the EGS
// evaluation: ProSynth-style provenance-guided synthesis
// (Raghothaman et al., POPL 2020) over a mode-bounded candidate-rule
// space.
//
// ProSynth runs a CEGIS loop between a SAT solver, which proposes a
// subset of candidate rules, and a Datalog solver, which evaluates
// the subset and returns provenance for the mistakes:
//
//   - "why" provenance for an undesirable derived tuple yields the
//     constraint that some rule used in its derivation be disabled —
//     for the paper's non-recursive fragment, each offending rule
//     derives the tuple on its own, so the constraint is simply that
//     the rule be off;
//   - "why-not" provenance for a missing desirable tuple yields the
//     constraint that at least one rule able to derive it be enabled.
//
// The loop starts, as ProSynth does, from the subset containing every
// candidate rule, and converges because each iteration's constraints
// eliminate the current subset. Like ILASP, the search space is
// finite: exhausting it yields Exhausted, not an unrealizability
// proof.
package prosynth

import (
	"context"
	"fmt"

	"github.com/egs-synthesis/egs/internal/eval"
	"github.com/egs-synthesis/egs/internal/ilasp"
	"github.com/egs-synthesis/egs/internal/modes"
	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/sat"
	"github.com/egs-synthesis/egs/internal/synth"
	"github.com/egs-synthesis/egs/internal/task"
)

// Synthesizer is the ProSynth-style baseline.
type Synthesizer struct {
	Source ilasp.ModeSource
	// RuleCap bounds candidate generation (0 = unlimited).
	RuleCap int
}

// Name implements synth.Synthesizer.
func (s *Synthesizer) Name() string {
	if s.Source == ilasp.TaskAgnostic {
		return "prosynth-F"
	}
	return "prosynth-L"
}

// Synthesize implements synth.Synthesizer.
func (s *Synthesizer) Synthesize(ctx context.Context, t *task.Task) (synth.Result, error) {
	if err := t.Prepare(); err != nil {
		return synth.Result{}, err
	}
	spec := ilasp.ModesFor(t, s.Source)
	gen := modes.Generate(ctx, t, spec, s.RuleCap)
	if gen.Truncated {
		if err := ctx.Err(); err != nil {
			return synth.Result{}, err
		}
		return synth.Result{}, fmt.Errorf("prosynth: candidate rule cap %d exceeded", s.RuleCap)
	}
	modes.SortRules(gen.Rules)
	detail := fmt.Sprintf("%d candidate rules", len(gen.Rules))

	rules, status, err := cegis(ctx, t, gen.Rules)
	if err != nil {
		return synth.Result{}, err
	}
	if status != synth.Sat {
		return synth.Result{Status: status, Detail: detail}, nil
	}
	return synth.Result{Status: synth.Sat, Query: query.UCQ{Rules: rules}, Detail: detail}, nil
}

// cegis runs the provenance-guided loop. All candidate-scoring sets
// live on the dense-id plane: rule outputs are TupleSets, so subset
// and membership checks against the examples are bitset probes.
func cegis(ctx context.Context, t *task.Task, candidates []query.Rule) ([]query.Rule, synth.Status, error) {
	ex := t.Example()
	db := ex.DB
	n := len(candidates)

	var solver sat.Solver
	lits := make([]sat.Lit, n)
	for i := range lits {
		lits[i] = sat.Lit(solver.NewVar())
	}

	posIDs := make([]relation.TupleID, len(t.Pos))
	for i, p := range t.Pos {
		posIDs[i] = db.InternTuple(p)
	}

	// Rule evaluation memo: outputs of rule i, computed on demand.
	outsMemo := make([]*relation.TupleSet, n)
	outputsOf := func(i int) *relation.TupleSet {
		if outsMemo[i] == nil {
			outsMemo[i] = eval.RuleOutputIDs(candidates[i], db)
		}
		return outsMemo[i]
	}
	// Why-not provenance memo: for each positive tuple id, the
	// candidate rules able to derive it (computed lazily, since it
	// requires evaluating the entire space once).
	deriverMemo := make(map[relation.TupleID][]int)
	deriversOf := func(id relation.TupleID) []int {
		if d, ok := deriverMemo[id]; ok {
			return d
		}
		var d []int
		for i := 0; i < n; i++ {
			if outputsOf(i).Has(id) {
				d = append(d, i)
			}
		}
		deriverMemo[id] = d
		return d
	}

	// Incremental derived-set scoring: counts[id] is the number of
	// selected rules deriving tuple id, so "the subset derives id" is
	// counts[id] > 0 and flipping rule i in or out of the subset
	// adjusts the derived set by ±outsMemo[i] — instead of re-unioning
	// every selected rule's outputs from scratch each CEGIS iteration.
	var counts []int32
	applyRule := func(i int, delta int32) {
		outputsOf(i).Iterate(func(id relation.TupleID) bool {
			if int(id) >= len(counts) {
				grown := make([]int32, int(id)+1)
				copy(grown, counts)
				counts = grown
			}
			counts[id] += delta
			return true
		})
	}
	derivedHas := func(id relation.TupleID) bool {
		return int(id) < len(counts) && counts[id] > 0
	}

	// Initial candidate subset: all rules on (ProSynth's seed).
	selected := make([]bool, n)
	for i := range selected {
		selected[i] = true
		applyRule(i, 1)
	}

	for {
		select {
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		default:
		}
		consistent := true
		// Why provenance: disable every selected rule deriving a
		// negative tuple (sound for non-recursive unions).
		for i := 0; i < n; i++ {
			if !selected[i] {
				continue
			}
			if derivesNegative(ex, outputsOf(i)) {
				solver.AddClause(lits[i].Neg())
				consistent = false
			}
		}
		// Why-not provenance: for each missing positive tuple,
		// require one of its derivers.
		for _, pid := range posIDs {
			if derivedHas(pid) {
				continue
			}
			consistent = false
			ds := deriversOf(pid)
			if len(ds) == 0 {
				// No candidate rule derives this positive tuple: the
				// why-not clause would be empty, so every subset fails
				// the same way. Report exhaustion directly instead of
				// pushing an unsatisfiable clause through the solver.
				return nil, synth.Exhausted, nil
			}
			clause := make([]sat.Lit, 0, len(ds))
			for _, i := range ds {
				clause = append(clause, lits[i])
			}
			solver.AddAtLeastOne(clause)
		}
		if consistent {
			// Also confirm positives are covered (they are, or the
			// loop would have added why-not constraints).
			var out []query.Rule
			for i := 0; i < n; i++ {
				if selected[i] && contributes(posIDs, outputsOf(i)) {
					out = append(out, candidates[i])
				}
			}
			out = pruneRedundant(ex, posIDs, out)
			return out, synth.Sat, nil
		}
		model, ok, err := solver.Solve(ctx)
		if err != nil {
			return nil, 0, err
		}
		if !ok {
			return nil, synth.Exhausted, nil
		}
		for i := 0; i < n; i++ {
			sel := model.Lit(lits[i])
			if sel == selected[i] {
				continue
			}
			if sel {
				applyRule(i, 1)
			} else {
				applyRule(i, -1)
			}
			selected[i] = sel
		}
	}
}

// derivesNegative reports whether the output set contains a negative
// example.
func derivesNegative(ex *task.Example, outs *relation.TupleSet) bool {
	bad := false
	outs.Iterate(func(id relation.TupleID) bool {
		if ex.IsNegativeID(id) {
			bad = true
			return false
		}
		return true
	})
	return bad
}

// contributes reports whether a rule derives at least one positive
// tuple; rules that do not are dropped from the final hypothesis.
func contributes(posIDs []relation.TupleID, outs *relation.TupleSet) bool {
	for _, id := range posIDs {
		if outs.Has(id) {
			return true
		}
	}
	return false
}

// pruneRedundant greedily removes rules whose positive coverage is
// subsumed by the rest, mirroring ProSynth's final minimization pass.
func pruneRedundant(ex *task.Example, posIDs []relation.TupleID, rules []query.Rule) []query.Rule {
	kept := append([]query.Rule(nil), rules...)
	for i := len(kept) - 1; i >= 0; i-- {
		without := make([]query.Rule, 0, len(kept)-1)
		without = append(without, kept[:i]...)
		without = append(without, kept[i+1:]...)
		if len(without) == 0 {
			continue
		}
		outs := eval.UCQOutputIDs(query.UCQ{Rules: without}, ex.DB)
		all := true
		for _, id := range posIDs {
			if !outs.Has(id) {
				all = false
				break
			}
		}
		if all {
			kept = without
		}
	}
	return kept
}
