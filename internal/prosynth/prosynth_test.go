package prosynth

import (
	"context"
	"strings"
	"testing"

	"github.com/egs-synthesis/egs/internal/ilasp"
	"github.com/egs-synthesis/egs/internal/synth"
	"github.com/egs-synthesis/egs/internal/task"
)

func load(t *testing.T, src string) *task.Task {
	t.Helper()
	tk, err := task.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

const twoHopSrc = `
task twohop
closed-world true
modes maxv=3 edge=2
input edge(2)
output out(2)
edge(a, b).
edge(b, c).
edge(c, d).
+out(a, c).
+out(b, d).
`

func TestCEGISConverges(t *testing.T) {
	tk := load(t, twoHopSrc)
	s := &Synthesizer{Source: ilasp.TaskSpecific}
	res, err := s.Synthesize(context.Background(), tk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != synth.Sat {
		t.Fatalf("status = %v (%s)", res.Status, res.Detail)
	}
	if ok, why := tk.Example().Consistent(res.Query); !ok {
		t.Fatalf("inconsistent: %s", why)
	}
}

func TestPruneRedundantRules(t *testing.T) {
	// The all-on seed selects many consistent rules; the final
	// hypothesis must not contain rules whose coverage is subsumed.
	src := `
task union
closed-world true
modes maxv=1 p=1 q=1
input p(1)
input q(1)
output out(1)
p(a).
p(b).
q(b).
+out(a).
+out(b).
`
	tk := load(t, src)
	s := &Synthesizer{Source: ilasp.TaskSpecific}
	res, err := s.Synthesize(context.Background(), tk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != synth.Sat {
		t.Fatalf("status = %v", res.Status)
	}
	// out(x) :- p(x) covers both positives; the q rule is redundant.
	if len(res.Query.Rules) != 1 {
		t.Errorf("hypothesis has %d rules, want pruned 1:\n%s",
			len(res.Query.Rules), res.Query.String(tk.Schema, tk.Domain))
	}
}

func TestExhausted(t *testing.T) {
	src := strings.Replace(twoHopSrc, "modes maxv=3 edge=2", "modes maxv=2 edge=1", 1)
	tk := load(t, src)
	s := &Synthesizer{Source: ilasp.TaskSpecific}
	res, err := s.Synthesize(context.Background(), tk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != synth.Exhausted {
		t.Fatalf("status = %v, want exhausted", res.Status)
	}
}

func TestUnderivablePositiveExhaustsImmediately(t *testing.T) {
	// The positive example mentions a constant (z) that no input fact
	// mentions, so no candidate rule can derive it: its deriver list
	// is empty. The loop must short-circuit to Exhausted instead of
	// routing an empty why-not clause through the solver.
	src := `
task underivable
closed-world true
modes maxv=3 edge=2
input edge(2)
output out(2)
edge(a, b).
edge(b, c).
+out(a, z).
`
	tk := load(t, src)
	s := &Synthesizer{Source: ilasp.TaskSpecific}
	res, err := s.Synthesize(context.Background(), tk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != synth.Exhausted {
		t.Fatalf("status = %v, want exhausted", res.Status)
	}
}

func TestWhyNotDrivesCoverage(t *testing.T) {
	// A disjunctive concept: the loop must enable rules for both
	// positives even though the seed's negatives-driven constraints
	// disable others.
	src := `
task disj
closed-world true
modes maxv=2 r=1 s=1
input r(2)
input s(2)
output out(1)
r(a, a).
r(c, d).
s(b, b).
s(d, c).
+out(a).
+out(b).
`
	tk := load(t, src)
	s := &Synthesizer{Source: ilasp.TaskSpecific}
	res, err := s.Synthesize(context.Background(), tk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != synth.Sat {
		t.Fatalf("status = %v (%s)", res.Status, res.Detail)
	}
	if ok, why := tk.Example().Consistent(res.Query); !ok {
		t.Fatalf("inconsistent: %s", why)
	}
	if len(res.Query.Rules) < 2 {
		t.Errorf("expected a union:\n%s", res.Query.String(tk.Schema, tk.Domain))
	}
}

func TestRuleCapError(t *testing.T) {
	tk := load(t, twoHopSrc)
	s := &Synthesizer{Source: ilasp.TaskAgnostic, RuleCap: 5}
	if _, err := s.Synthesize(context.Background(), tk); err == nil {
		t.Fatal("rule cap exceeded but no error")
	}
}

func TestNames(t *testing.T) {
	if (&Synthesizer{Source: ilasp.TaskSpecific}).Name() != "prosynth-L" {
		t.Error("prosynth-L name wrong")
	}
	if (&Synthesizer{Source: ilasp.TaskAgnostic}).Name() != "prosynth-F" {
		t.Error("prosynth-F name wrong")
	}
}

func TestCancellation(t *testing.T) {
	tk := load(t, twoHopSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := &Synthesizer{Source: ilasp.TaskSpecific}
	if _, err := s.Synthesize(ctx, tk); err == nil {
		t.Fatal("cancelled run returned no error")
	}
}
