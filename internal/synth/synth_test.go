package synth_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/egs-synthesis/egs/internal/enumerative"
	"github.com/egs-synthesis/egs/internal/ilasp"
	"github.com/egs-synthesis/egs/internal/prosynth"
	"github.com/egs-synthesis/egs/internal/scythe"
	"github.com/egs-synthesis/egs/internal/synth"
	"github.com/egs-synthesis/egs/internal/task"
)

const trafficSrc = `
task traffic
closed-world true
expect sat
modes maxv=2 GreenSignal=2 HasTraffic=2 Intersects=1
input Intersects(2)
input GreenSignal(1)
input HasTraffic(1)
output Crashes(1)
Intersects(Broadway, LibertySt).
Intersects(Broadway, WallSt).
Intersects(Broadway, Whitehall).
Intersects(LibertySt, Broadway).
Intersects(LibertySt, WilliamSt).
Intersects(WallSt, Broadway).
Intersects(WallSt, WilliamSt).
Intersects(Whitehall, Broadway).
Intersects(WilliamSt, LibertySt).
Intersects(WilliamSt, WallSt).
GreenSignal(Broadway).
GreenSignal(LibertySt).
GreenSignal(WilliamSt).
GreenSignal(Whitehall).
HasTraffic(Broadway).
HasTraffic(WallSt).
HasTraffic(WilliamSt).
HasTraffic(Whitehall).
+Crashes(Broadway).
+Crashes(Whitehall).
`

const predecessorSrc = `
task predecessor
closed-world false
expect sat
modes maxv=2 succ=1
input succ(2)
output pred(2)
succ(one, two).
succ(two, three).
succ(three, four).
+pred(two, one).
+pred(three, two).
+pred(four, three).
-pred(one, two).
-pred(one, one).
-pred(two, three).
`

const undirectedSrc = `
task undirected-edge
closed-world false
expect sat
features disjunction
modes maxv=2 edge=1
input edge(2)
output sym(2)
edge(a, b).
edge(c, d).
+sym(a, b).
+sym(b, a).
+sym(c, d).
-sym(a, c).
-sym(a, d).
-sym(b, c).
`

func load(t *testing.T, src string) *task.Task {
	t.Helper()
	tk, err := task.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

func allTools() []synth.Synthesizer {
	return []synth.Synthesizer{
		&synth.EGS{},
		&scythe.Synthesizer{},
		&ilasp.Synthesizer{Source: ilasp.TaskSpecific},
		&prosynth.Synthesizer{Source: ilasp.TaskSpecific},
		&enumerative.Synthesizer{Indistinguishability: true},
	}
}

func TestAllToolsSolveTraffic(t *testing.T) {
	for _, tool := range allTools() {
		tool := tool
		t.Run(tool.Name(), func(t *testing.T) {
			tk := load(t, trafficSrc)
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			res, err := tool.Synthesize(ctx, tk)
			if err != nil {
				t.Fatalf("error: %v", err)
			}
			if res.Status != synth.Sat {
				t.Fatalf("status = %v (%s)", res.Status, res.Detail)
			}
			if ok, why := synth.CheckSat(tk, res); !ok {
				t.Fatalf("inconsistent result: %s\n%s", why, res.Query.String(tk.Schema, tk.Domain))
			}
		})
	}
}

func TestAllToolsSolvePredecessor(t *testing.T) {
	for _, tool := range allTools() {
		tool := tool
		t.Run(tool.Name(), func(t *testing.T) {
			tk := load(t, predecessorSrc)
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			res, err := tool.Synthesize(ctx, tk)
			if err != nil {
				t.Fatalf("error: %v", err)
			}
			if res.Status != synth.Sat {
				t.Fatalf("status = %v (%s)", res.Status, res.Detail)
			}
			if ok, why := synth.CheckSat(tk, res); !ok {
				t.Fatalf("inconsistent result: %s", why)
			}
		})
	}
}

func TestAllToolsSolveDisjunctiveTask(t *testing.T) {
	for _, tool := range allTools() {
		tool := tool
		t.Run(tool.Name(), func(t *testing.T) {
			tk := load(t, undirectedSrc)
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			res, err := tool.Synthesize(ctx, tk)
			if err != nil {
				t.Fatalf("error: %v", err)
			}
			if res.Status != synth.Sat {
				t.Fatalf("status = %v (%s)", res.Status, res.Detail)
			}
			if ok, why := synth.CheckSat(tk, res); !ok {
				t.Fatalf("inconsistent result: %s\n%s", why, res.Query.String(tk.Schema, tk.Domain))
			}
			if len(res.Query.Rules) < 2 {
				t.Errorf("%s: expected a union, got %d rule(s)", tool.Name(), len(res.Query.Rules))
			}
		})
	}
}

const isomorphismSrc = `
task isomorphism
closed-world true
expect unsat
modes maxv=3 edge=2
input edge(2)
output target(1)
edge(a, b).
edge(b, a).
+target(a).
`

func TestUnrealizableVerdicts(t *testing.T) {
	// EGS proves unsat; the mode-bounded tools report Exhausted —
	// the Section 6.5 distinction.
	tk := load(t, isomorphismSrc)
	ctx := context.Background()

	egsRes, err := (&synth.EGS{}).Synthesize(ctx, tk)
	if err != nil {
		t.Fatal(err)
	}
	if egsRes.Status != synth.Unsat {
		t.Errorf("egs status = %v, want unsat", egsRes.Status)
	}
	for _, tool := range []synth.Synthesizer{
		&ilasp.Synthesizer{Source: ilasp.TaskSpecific},
		&prosynth.Synthesizer{Source: ilasp.TaskSpecific},
	} {
		tk2 := load(t, isomorphismSrc)
		res, err := tool.Synthesize(ctx, tk2)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != synth.Exhausted {
			t.Errorf("%s status = %v, want exhausted", tool.Name(), res.Status)
		}
	}
}

func TestScytheTimeoutOnUnrealizable(t *testing.T) {
	// Scythe keeps deepening joins and hits its deadline, as in
	// Table 2 of the paper.
	tk := load(t, isomorphismSrc)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	res, err := (&scythe.Synthesizer{}).Synthesize(ctx, tk)
	if err == nil && res.Status == synth.Sat {
		t.Fatalf("scythe found a query on an unrealizable task:\n%s",
			res.Query.String(tk.Schema, tk.Domain))
	}
	// Either a deadline error or Exhausted (if it ran out of join
	// depth first) is acceptable; Sat is not.
}

func TestStatusString(t *testing.T) {
	if synth.Sat.String() != "sat" || synth.Unsat.String() != "unsat" || synth.Exhausted.String() != "exhausted" {
		t.Error("Status strings wrong")
	}
	if synth.Status(9).String() != "unknown" {
		t.Error("unknown Status string wrong")
	}
}

func TestNames(t *testing.T) {
	names := map[string]bool{}
	for _, tool := range []synth.Synthesizer{
		&synth.EGS{},
		&synth.EGS{Label: "egs-p1"},
		&scythe.Synthesizer{},
		&ilasp.Synthesizer{Source: ilasp.TaskSpecific},
		&ilasp.Synthesizer{Source: ilasp.TaskAgnostic},
		&prosynth.Synthesizer{Source: ilasp.TaskSpecific},
		&prosynth.Synthesizer{Source: ilasp.TaskAgnostic},
		&enumerative.Synthesizer{},
		&enumerative.Synthesizer{Indistinguishability: true},
	} {
		n := tool.Name()
		if names[n] {
			t.Errorf("duplicate tool name %q", n)
		}
		names[n] = true
	}
}
