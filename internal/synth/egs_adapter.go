package synth

import (
	"context"

	"github.com/egs-synthesis/egs/internal/egs"
	"github.com/egs-synthesis/egs/internal/task"
)

// EGS adapts the core example-guided synthesizer to the Synthesizer
// interface.
type EGS struct {
	// Label overrides the reported name (default "egs").
	Label string
	// Options forwards to the core algorithm.
	Options egs.Options
}

// Name implements Synthesizer.
func (e *EGS) Name() string {
	if e.Label != "" {
		return e.Label
	}
	return "egs"
}

// Synthesize implements Synthesizer.
func (e *EGS) Synthesize(ctx context.Context, t *task.Task) (Result, error) {
	res, err := egs.Synthesize(ctx, t, e.Options)
	if err != nil {
		return Result{}, err
	}
	if res.Unsat {
		out := Result{Status: Unsat}
		if res.Witness != nil {
			out.Detail = res.Witness.String(t.Schema, t.Domain)
		}
		return out, nil
	}
	return Result{Status: Sat, Query: res.Query}, nil
}
