// Package synth defines the common interface implemented by every
// synthesizer in the reproduction — EGS itself and the three baseline
// re-implementations (Scythe-style enumerative search, ILASP-style
// constraint solving, ProSynth-style hybrid search) — so that the
// benchmark harness can drive them uniformly.
package synth

import (
	"context"

	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/task"
)

// Status classifies a synthesizer verdict.
type Status uint8

const (
	// Sat: a consistent query was found.
	Sat Status = iota
	// Unsat: the synthesizer proved that no consistent query exists
	// in the full language. Only EGS can return this (Theorem 4.3).
	Unsat
	// Exhausted: the synthesizer's bounded search space contains no
	// consistent query. This does not prove unrealizability — the
	// distinction the paper draws in Section 6.5 between EGS and the
	// mode-bounded baselines.
	Exhausted
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	case Exhausted:
		return "exhausted"
	default:
		return "unknown"
	}
}

// Result is a synthesizer verdict plus the synthesized query when
// Status is Sat.
type Result struct {
	Status Status
	Query  query.UCQ
	// Detail carries synthesizer-specific diagnostics, e.g. the
	// candidate-rule count for the mode-bounded baselines.
	Detail string
}

// Synthesizer is one tool configuration runnable on a task.
type Synthesizer interface {
	// Name identifies the configuration, e.g. "egs" or "ilasp-L".
	Name() string
	// Synthesize attempts the task. Timeouts are delivered through
	// ctx; implementations return ctx.Err() when interrupted.
	Synthesize(ctx context.Context, t *task.Task) (Result, error)
}

// CheckSat verifies a Sat result against the task's example; every
// synthesizer's output is re-checked by the harness and the
// integration tests with this helper.
func CheckSat(t *task.Task, r Result) (bool, string) {
	if r.Status != Sat {
		return false, "result is not sat"
	}
	return t.Example().Consistent(r.Query)
}
