package egs_test

import (
	"context"
	"fmt"
	"log"

	egs "github.com/egs-synthesis/egs"
)

// ExampleSynthesize demonstrates end-to-end synthesis: the
// grandparent relation is learned from one positive and two negative
// examples.
func ExampleSynthesize() {
	b := egs.NewBuilder()
	b.Input("parent", 2)
	b.Output("grandparent", 2)
	b.Fact("parent", "alice", "bob")
	b.Fact("parent", "bob", "carol")
	b.Positive("grandparent", "alice", "carol")
	b.Negative("grandparent", "alice", "bob")
	b.Negative("grandparent", "bob", "carol")
	task, err := b.Task()
	if err != nil {
		log.Fatal(err)
	}
	res, err := egs.Synthesize(context.Background(), task, egs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Query.Datalog())
	// Output:
	// grandparent(x, z) :- parent(x, y), parent(y, z).
}

// ExampleSynthesize_unsat demonstrates a proof of unrealizability:
// two isomorphic vertices cannot be told apart by any relational
// query (the paper's Section 6.5).
func ExampleSynthesize_unsat() {
	b := egs.NewBuilder().ClosedWorld(true)
	b.Input("edge", 2)
	b.Output("target", 1)
	b.Fact("edge", "a", "b")
	b.Fact("edge", "b", "a")
	b.Positive("target", "a")
	task, err := b.Task()
	if err != nil {
		log.Fatal(err)
	}
	res, err := egs.Synthesize(context.Background(), task, egs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Unsat)
	fmt.Println(res.UnsatReason)
	// Output:
	// true
	// unsat: all 3 enumeration contexts reachable for field 1 of target(a) were exhausted without finding a consistent rule, so by Theorem 4.3 no consistent query exists
}

// ExampleQuery_SQL renders a synthesized query as SQL.
func ExampleQuery_SQL() {
	b := egs.NewBuilder().ClosedWorld(true)
	b.Input("ordered", 2)
	b.Input("instock", 1)
	b.Output("ship", 2)
	b.Fact("ordered", "ann", "lamp")
	b.Fact("ordered", "ben", "rug")
	b.Fact("instock", "lamp")
	b.Positive("ship", "ann", "lamp")
	task, err := b.Task()
	if err != nil {
		log.Fatal(err)
	}
	res, err := egs.Synthesize(context.Background(), task, egs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sql, err := res.Query.SQL()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sql)
	// Output:
	// SELECT DISTINCT t0.c0 AS c0, t0.c1 AS c1
	// FROM ordered AS t0, instock AS t1
	// WHERE t0.c1 = t1.c0
}

// ExampleQuery_Explain shows why-provenance for a derived tuple.
func ExampleQuery_Explain() {
	b := egs.NewBuilder().ClosedWorld(true)
	b.Input("basedIn", 2)
	b.Input("locatedIn", 2)
	b.Output("hqIn", 2)
	b.Fact("basedIn", "Acme", "Austin")
	b.Fact("locatedIn", "Austin", "Texas")
	b.Positive("hqIn", "Acme", "Texas")
	task, err := b.Task()
	if err != nil {
		log.Fatal(err)
	}
	res, err := egs.Synthesize(context.Background(), task, egs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	exp, ok := res.Query.Explain(task, "hqIn", []string{"Acme", "Texas"})
	if !ok {
		log.Fatal("not derived")
	}
	for _, f := range exp.Facts {
		fmt.Println(f)
	}
	// Output:
	// basedIn(Acme, Austin)
	// locatedIn(Austin, Texas)
}
