// Kinship: the Section 5 walkthrough — multi-column outputs, unions
// of conjunctive queries, and negation — on the public egs API.
//
// Run from the repository root:
//
//	go run ./examples/kinship
//
// Three tasks over the Figure 3 genealogy tree:
//
//  1. grandparent with explicit negatives: the slice-wise
//     ExplainTuple procedure (Section 5.1) explains the two fields of
//     grandparent(Sarabi, Kiara) one at a time;
//  2. the full grandparent relation: the divide-and-conquer loop
//     (Section 5.2) learns a union of conjunctive queries;
//  3. sibling: unsolvable without negation, solvable once the
//     inequality relation neq is added (Section 5.3).
package main

import (
	"context"
	"fmt"
	"log"

	egs "github.com/egs-synthesis/egs"
)

// figure3 populates the genealogy tree of Figure 3.
func figure3(b *egs.Builder) {
	b.Input("father", 2)
	b.Input("mother", 2)
	b.Fact("father", "Mufasa", "Simba")
	b.Fact("mother", "Sarabi", "Simba")
	b.Fact("father", "Jasiri", "Nala")
	b.Fact("mother", "Sarafina", "Nala")
	b.Fact("father", "Simba", "Kiara")
	b.Fact("mother", "Nala", "Kiara")
	b.Fact("father", "Simba", "Kopa")
	b.Fact("mother", "Nala", "Kopa")
}

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	fmt.Println("-- 1. Explaining one tuple, field by field (Section 5.1)")
	b := egs.NewBuilder()
	figure3(b)
	b.Output("grandparent", 2)
	b.Positive("grandparent", "Sarabi", "Kiara")
	b.Negative("grandparent", "Sarabi", "Simba")
	t1, err := b.Task()
	if err != nil {
		log.Fatal(err)
	}
	q, ok, err := egs.ExplainTuple(ctx, t1, "grandparent", []string{"Sarabi", "Kiara"}, egs.Options{})
	if err != nil || !ok {
		log.Fatalf("ExplainTuple failed: ok=%v err=%v", ok, err)
	}
	fmt.Printf("   grandparent(Sarabi, Kiara) is explained by:\n   %s\n\n", q.Datalog())

	fmt.Println("-- 2. Learning the full relation as a union (Section 5.2)")
	b = egs.NewBuilder()
	figure3(b)
	b.Output("grandparent", 2)
	for _, gp := range []string{"Sarabi", "Mufasa", "Jasiri", "Sarafina"} {
		b.Positive("grandparent", gp, "Kiara")
		b.Positive("grandparent", gp, "Kopa")
	}
	b.Negative("grandparent", "Mufasa", "Nala")
	b.Negative("grandparent", "Sarafina", "Simba")
	b.Negative("grandparent", "Sarabi", "Simba")
	b.Negative("grandparent", "Simba", "Kiara")
	t2, err := b.Task()
	if err != nil {
		log.Fatal(err)
	}
	res, err := egs.Synthesize(ctx, t2, egs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   learned %d rules:\n", res.Query.NumRules())
	fmt.Println(indent(res.Query.Datalog()))
	fmt.Println()

	fmt.Println("-- 3. Negation: sibling needs the neq relation (Section 5.3)")
	sibling := func(withNeq bool) *egs.Task {
		b := egs.NewBuilder()
		if withNeq {
			b.AddNeq()
		}
		figure3(b)
		b.Output("sibling", 2)
		b.Positive("sibling", "Kopa", "Kiara")
		b.Negative("sibling", "Kopa", "Kopa")
		t, err := b.Task()
		if err != nil {
			log.Fatal(err)
		}
		return t
	}
	res3, err := egs.Synthesize(ctx, sibling(false), egs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   without neq: unsat=%v (no strictly positive query can\n", res3.Unsat)
	fmt.Println("   distinguish sibling(Kopa, Kiara) from sibling(Kopa, Kopa))")

	res4, err := egs.Synthesize(ctx, sibling(true), egs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if res4.Unsat {
		log.Fatal("sibling with neq should be solvable")
	}
	fmt.Println("   with neq:")
	fmt.Println(indent(res4.Query.Datalog()))
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "   " + line + "\n"
	}
	return out[:len(out)-1]
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	return append(lines, s[start:])
}
