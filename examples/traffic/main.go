// Traffic: the paper's running example (Section 2, Figures 1a-1c).
//
// Run from the repository root:
//
//	go run ./examples/traffic
//
// The program loads the traffic benchmark, prints the constant
// co-occurrence graph G_I of Figure 1c, runs EGS, and checks that the
// synthesized query is the paper's Equation 1:
//
//	Crashes(x) :- Intersects(x, y), HasTraffic(x), HasTraffic(y),
//	              GreenSignal(x), GreenSignal(y).
//
// It then re-runs the example-guided search against the three
// baseline synthesizers to reproduce the Section 2.3 comparison
// (EGS < 1s, the syntax-guided tools considerably slower).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/egs-synthesis/egs/internal/cograph"
	"github.com/egs-synthesis/egs/internal/egs"
	"github.com/egs-synthesis/egs/internal/enumerative"
	"github.com/egs-synthesis/egs/internal/ilasp"
	"github.com/egs-synthesis/egs/internal/prosynth"
	"github.com/egs-synthesis/egs/internal/scythe"
	"github.com/egs-synthesis/egs/internal/synth"
	"github.com/egs-synthesis/egs/internal/task"
)

func main() {
	log.SetFlags(0)
	path := flag.String("task", "testdata/benchmarks/knowledge-discovery/traffic.task", "task file")
	flag.Parse()

	t, err := task.Load(*path)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Constant co-occurrence graph (Figure 1c):")
	fmt.Println(cograph.New(t.Input).String())

	res, err := egs.Synthesize(context.Background(), t, egs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("EGS synthesized (compare Equation 1):")
	fmt.Println(res.Query.String(t.Schema, t.Domain))
	fmt.Printf("  contexts popped: %d, rule evaluations: %d, time: %v\n\n",
		res.Stats.ContextsPopped, res.Stats.RuleEvals, res.Stats.Duration.Round(time.Microsecond))

	fmt.Println("Section 2.3 comparison:")
	tools := []synth.Synthesizer{
		&synth.EGS{},
		&scythe.Synthesizer{},
		&ilasp.Synthesizer{Source: ilasp.TaskSpecific},
		&prosynth.Synthesizer{Source: ilasp.TaskSpecific},
		&enumerative.Synthesizer{Indistinguishability: true},
	}
	for _, tool := range tools {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		start := time.Now()
		r, err := tool.Synthesize(ctx, t)
		elapsed := time.Since(start).Round(time.Millisecond)
		cancel()
		switch {
		case err != nil:
			fmt.Printf("  %-20s %8v  (%v)\n", tool.Name(), elapsed, err)
		case r.Status == synth.Sat:
			fmt.Printf("  %-20s %8v  %d rule(s), %d literal(s)\n",
				tool.Name(), elapsed, len(r.Query.Rules), r.Query.Size())
		default:
			fmt.Printf("  %-20s %8v  %v\n", tool.Name(), elapsed, r.Status)
		}
	}
}
