// Disambiguation: using alternative explanations to choose the next
// example to label — the interactive-feedback direction the paper
// sketches in Section 8.
//
// Run from the repository root:
//
//	go run ./examples/disambiguation
//
// With a single labelled crash, many queries explain the data. The
// example asks EGS for several alternative explanations
// (egs.Alternatives), finds an output tuple on which they disagree,
// and shows how labelling that tuple collapses the ambiguity to the
// paper's Equation 1. It finishes with why-provenance for the final
// query (Query.Explain).
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	egs "github.com/egs-synthesis/egs"
)

// buildTraffic builds the Figure 1 instance with explicit partial
// labels: under open-world labelling, unlabelled tuples are
// unconstrained, so distinct consistent queries can disagree on them.
func buildTraffic(positives, negatives []string) *egs.Task {
	b := egs.NewBuilder().Name("traffic")
	b.Input("Intersects", 2)
	b.Input("GreenSignal", 1)
	b.Input("HasTraffic", 1)
	b.Output("Crashes", 1)
	pairs := [][2]string{
		{"Broadway", "LibertySt"}, {"Broadway", "WallSt"}, {"Broadway", "Whitehall"},
		{"LibertySt", "Broadway"}, {"LibertySt", "WilliamSt"},
		{"WallSt", "Broadway"}, {"WallSt", "WilliamSt"},
		{"Whitehall", "Broadway"},
		{"WilliamSt", "LibertySt"}, {"WilliamSt", "WallSt"},
	}
	for _, p := range pairs {
		b.Fact("Intersects", p[0], p[1])
	}
	for _, s := range []string{"Broadway", "LibertySt", "WilliamSt", "Whitehall"} {
		b.Fact("GreenSignal", s)
	}
	for _, s := range []string{"Broadway", "WallSt", "WilliamSt", "Whitehall"} {
		b.Fact("HasTraffic", s)
	}
	for _, p := range positives {
		b.Positive("Crashes", p)
	}
	for _, n := range negatives {
		b.Negative("Crashes", n)
	}
	t, err := b.Task()
	if err != nil {
		log.Fatal(err)
	}
	return t
}

// buildFull builds the fully labelled closed-world instance of the
// paper (Section 2.1).
func buildFull() *egs.Task {
	b := egs.NewBuilder().Name("traffic-full").ClosedWorld(true)
	b.Input("Intersects", 2)
	b.Input("GreenSignal", 1)
	b.Input("HasTraffic", 1)
	b.Output("Crashes", 1)
	pairs := [][2]string{
		{"Broadway", "LibertySt"}, {"Broadway", "WallSt"}, {"Broadway", "Whitehall"},
		{"LibertySt", "Broadway"}, {"LibertySt", "WilliamSt"},
		{"WallSt", "Broadway"}, {"WallSt", "WilliamSt"},
		{"Whitehall", "Broadway"},
		{"WilliamSt", "LibertySt"}, {"WilliamSt", "WallSt"},
	}
	for _, p := range pairs {
		b.Fact("Intersects", p[0], p[1])
	}
	for _, s := range []string{"Broadway", "LibertySt", "WilliamSt", "Whitehall"} {
		b.Fact("GreenSignal", s)
	}
	for _, s := range []string{"Broadway", "WallSt", "WilliamSt", "Whitehall"} {
		b.Fact("HasTraffic", s)
	}
	b.Positive("Crashes", "Broadway")
	b.Positive("Crashes", "Whitehall")
	task, err := b.Task()
	if err != nil {
		log.Fatal(err)
	}
	return task
}

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// Underspecified: one positive and one negative label; the other
	// streets are unlabelled, so several small queries fit.
	fmt.Println("With only +Crashes(Whitehall) and -Crashes(WallSt) labelled,")
	fmt.Println("several queries explain Crashes(Whitehall):")
	t := buildTraffic([]string{"Whitehall"}, []string{"WallSt"})
	raw, err := egs.Alternatives(ctx, t, "Crashes", []string{"Whitehall"}, 12, egs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// Keep alternatives that are semantically distinct on this input
	// (syntactic variants deriving identical outputs teach nothing).
	var alts []*egs.Query
	sigSeen := map[string]bool{}
	for _, q := range raw {
		outs := q.Eval(t)
		sig := fmt.Sprint(outs)
		if sigSeen[sig] {
			continue
		}
		sigSeen[sig] = true
		alts = append(alts, q)
		if len(alts) == 3 {
			break
		}
	}
	for i, q := range alts {
		fmt.Printf("  %d) %s\n", i+1, q.Datalog())
	}
	if len(alts) < 2 {
		fmt.Println("  (the data pins the concept down already)")
		return
	}

	// Find a tuple the alternatives disagree on: a candidate for the
	// user's next label.
	outputs := make([]map[string]bool, len(alts))
	union := map[string]bool{}
	for i, q := range alts {
		outputs[i] = map[string]bool{}
		for _, tu := range q.Eval(t) {
			outputs[i][tu] = true
			union[tu] = true
		}
	}
	var disputed []string
	for tu := range union {
		n := 0
		for i := range alts {
			if outputs[i][tu] {
				n++
			}
		}
		if n != len(alts) {
			disputed = append(disputed, tu)
		}
	}
	sort.Strings(disputed)
	fmt.Println("\nThey disagree on:")
	for _, d := range disputed {
		fmt.Println("  ", d)
	}
	fmt.Println("\nEach disputed tuple is a good next question for the user.")
	fmt.Println("With the paper's full closed-world labelling, a single concept")
	fmt.Println("remains:")

	t = buildFull()
	res, err := egs.Synthesize(ctx, t, egs.Options{})
	if err != nil || res.Unsat {
		log.Fatalf("res=%+v err=%v", res, err)
	}
	fmt.Println("  ", res.Query.Datalog())

	exp, ok := res.Query.Explain(t, "Crashes", []string{"Whitehall"})
	if !ok {
		log.Fatal("no explanation")
	}
	fmt.Println("\nWhy Crashes(Whitehall)?")
	fmt.Println("  rule:", exp.Rule)
	for _, f := range exp.Facts {
		fmt.Println("  fact:", f)
	}
}
