// Quickstart: synthesize a relational query from an input-output
// example in a few lines, using the public egs API.
//
// Run from the repository root:
//
//	go run ./examples/quickstart
//
// The example encodes a tiny programming-by-example task — "which
// movies should we recommend?" — with the task builder, runs the EGS
// synthesizer, and prints the learned Datalog query.
package main

import (
	"context"
	"fmt"
	"log"

	egs "github.com/egs-synthesis/egs"
)

func main() {
	log.SetFlags(0)

	// 1. Describe the example: input facts, output relation, and the
	//    desired/undesired output tuples. Closed-world labelling
	//    marks every unlisted recommendation as undesirable.
	b := egs.NewBuilder().Name("recommend").ClosedWorld(true)
	b.Input("trusts", 2) // trusts(user, critic)
	b.Input("likes", 2)  // likes(critic, movie)
	b.Output("recommend", 2)

	b.Fact("trusts", "Sam", "Ebert")
	b.Fact("trusts", "Sam", "Kael")
	b.Fact("trusts", "Joy", "Kael")
	b.Fact("likes", "Ebert", "Ikiru")
	b.Fact("likes", "Ebert", "PlayTime")
	b.Fact("likes", "Kael", "Badlands")
	b.Fact("likes", "Sarris", "Vertigo")

	b.Positive("recommend", "Sam", "Ikiru")
	b.Positive("recommend", "Sam", "PlayTime")
	b.Positive("recommend", "Sam", "Badlands")
	b.Positive("recommend", "Joy", "Badlands")

	task, err := b.Task()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Synthesize. EGS either returns a consistent query or proves
	//    that none exists.
	res, err := egs.Synthesize(context.Background(), task, egs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if res.Unsat {
		log.Fatal("no consistent query exists")
	}

	// 3. Inspect the result.
	fmt.Println("Synthesized query:")
	fmt.Println(res.Query.Datalog())
	fmt.Printf("\nSearch explored %d contexts and evaluated %d candidate rules.\n",
		res.Stats.ContextsExplored, res.Stats.CandidatesEvaluated)

	// 4. Independently verify consistency and inspect the output.
	if ok, why := task.Consistent(res.Query); !ok {
		log.Fatalf("inconsistent: %s", why)
	}
	fmt.Println("Derived tuples:")
	for _, t := range res.Query.Eval(task) {
		fmt.Println(" ", t)
	}
}
