// Unrealizable: proving that no consistent query exists (Section
// 6.5 and Theorem 4.3).
//
// Run from the repository root:
//
//	go run ./examples/unrealizable
//
// EGS's completeness guarantee lets it *prove* unrealizability by
// exhausting the enumeration-context space: something the
// syntax-guided baselines cannot do, because exhausting a
// mode-bounded rule space only rules out that space. The example
// demonstrates both verdicts on the isomorphism benchmark and shows
// the Lemma 4.2 fast path on the slow traffic-partial case.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/egs-synthesis/egs/internal/egs"
	"github.com/egs-synthesis/egs/internal/ilasp"
	"github.com/egs-synthesis/egs/internal/task"
)

func main() {
	log.SetFlags(0)
	dir := flag.String("dir", "testdata/benchmarks/unrealizable", "benchmark directory")
	flag.Parse()
	ctx := context.Background()

	iso, err := task.Load(*dir + "/isomorphism.task")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("isomorphism: edge(a,b), edge(b,a); explain target(a) but not target(b).")
	res, err := egs.Synthesize(ctx, iso, egs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  EGS: unsat=%v after exploring %d contexts (a proof, by Theorem 4.3)\n",
		res.Unsat, res.Stats.ContextsPopped)

	il := &ilasp.Synthesizer{Source: ilasp.TaskSpecific}
	r, err := il.Synthesize(ctx, iso)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ILASP-style baseline: %v — only rules out its mode-bounded space (%s)\n\n",
		r.Status, r.Detail)

	tp, err := task.Load(*dir + "/traffic-partial.task")
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err = egs.Synthesize(ctx, tp, egs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traffic-partial: exhaustive unsat proof explored %d contexts in %v\n",
		res.Stats.ContextsPopped, time.Since(start).Round(time.Millisecond))

	tp2, err := task.Load(*dir + "/traffic-partial.task")
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	res, err = egs.Synthesize(ctx, tp2, egs.Options{QuickUnsat: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traffic-partial: Lemma 4.2 fast path (QuickUnsat) decided unsat=%v in %v\n",
		res.Unsat, time.Since(start).Round(time.Millisecond))
}
