// Program analysis: synthesizing static analyses from examples — the
// paper's second application domain (Section 6.1) and the use case
// sketched in Section 8: extract relational facts from the analyzed
// program, highlight the desired alarms, and let the synthesizer
// produce the analysis rule.
//
// Run from the repository root:
//
//	go run ./examples/programanalysis
//
// The example loads the downcast benchmark (a points-to-based
// downcast safety checker for Java, with negation) and the rvcheck
// benchmark (APISan's return-value checker), synthesizes both, and
// prints the learned analyses alongside their search statistics.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/egs-synthesis/egs/internal/egs"
	"github.com/egs-synthesis/egs/internal/task"
)

func main() {
	log.SetFlags(0)
	dir := flag.String("dir", "testdata/benchmarks/program-analysis", "benchmark directory")
	flag.Parse()

	for _, name := range []string{"downcast", "rvcheck", "shadowed-var"} {
		t, err := task.Load(*dir + "/" + name + ".task")
		if err != nil {
			log.Fatal(err)
		}
		res, err := egs.Synthesize(context.Background(), t, egs.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if res.Unsat {
			log.Fatalf("%s: unexpectedly unrealizable", name)
		}
		fmt.Printf("== %s: %d input tuples over %d relations -> %d rule(s) in %v\n",
			t.Name, t.RawInputCount, t.RawInputRels, len(res.Query.Rules),
			res.Stats.Duration.Round(time.Microsecond))
		fmt.Println(res.Query.String(t.Schema, t.Domain))
		if ok, why := t.Example().Consistent(res.Query); !ok {
			log.Fatalf("%s: inconsistent result: %s", name, why)
		}
		fmt.Println()
	}
}
